//! The non-intrusive resource monitor.
//!
//! On every published iShare machine "there is a resource monitor
//! measuring CPU and memory usage of host processes periodically ...
//! \[using\] lightweight system utilities, such as `vmstat` and `prstat`"
//! (§5). This module is that monitor: it reads cumulative CPU counters
//! from a [`ResourceProbe`] (the simulator's accounting, standing in for
//! `/proc/stat`), diffs them across its sampling period, and emits
//! [`Observation`]s — host load, free memory, service liveness — the
//! detector consumes.
//!
//! Everything here is *observable without privileges on the host*: no
//! per-host-process instrumentation, no knowledge of contention-free
//! performance, exactly the paper's constraint.

/// What a machine exposes to the monitor — the `vmstat`/`prstat` surface.
pub trait ResourceProbe {
    /// Cumulative (host+system CPU ticks, total ticks) since boot.
    fn cpu_counters(&self) -> (u64, u64);
    /// Memory currently available for a guest working set, in MB.
    fn free_mem_for_guest_mb(&self) -> u32;
    /// Whether the FGCS service still responds. `false` means the
    /// machine was revoked or crashed (URR): "its termination indicates
    /// resource revocation".
    fn service_alive(&self) -> bool;
}

impl ResourceProbe for fgcs_sim::Machine {
    fn cpu_counters(&self) -> (u64, u64) {
        let a = self.accounting();
        (a.host + a.system, a.total())
    }

    fn free_mem_for_guest_mb(&self) -> u32 {
        self.free_mem_for_guest_mb()
    }

    fn service_alive(&self) -> bool {
        // Plumbed through from the simulator's revocation state
        // (`Machine::revoke`), so S5 is detectable from the probe itself
        // rather than only from synthetic lab downtime.
        self.service_alive()
    }
}

/// One monitor sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Host CPU load over the last sampling period, in `[0, 1]`.
    pub host_load: f64,
    /// Memory available to a guest working set, MB.
    pub free_mem_mb: u32,
    /// FGCS service liveness.
    pub alive: bool,
}

impl Observation {
    /// An observation representing a dead machine (URR): no service, no
    /// meaningful load reading.
    pub fn dead() -> Self {
        Observation {
            host_load: 0.0,
            free_mem_mb: 0,
            alive: false,
        }
    }
}

/// Periodic sampler turning probe counter reads into [`Observation`]s.
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    last: Option<(u64, u64)>,
    resets: u64,
}

impl Monitor {
    /// Creates a monitor with no sample history.
    pub fn new() -> Self {
        Monitor {
            last: None,
            resets: 0,
        }
    }

    /// Takes one sample. The first call establishes the counter baseline
    /// and reports the load as 0 over an empty window; subsequent calls
    /// report utilization since the previous call.
    ///
    /// Cumulative counters on a real machine are not monotone across the
    /// monitor's lifetime: a host reboot or a monitor-daemon restart
    /// resets them to zero, and a counter wrap or torn read can yield a
    /// busy diff larger than the total diff. A naive diff then reports
    /// garbage (a negative busy span underflows `u64` to a huge load).
    /// Any such inconsistent window is treated as a counter reset: the
    /// baseline is re-established from the new reading and the window's
    /// load is reported as 0, exactly like the very first sample.
    pub fn sample<P: ResourceProbe>(&mut self, probe: &P) -> Observation {
        if !probe.service_alive() {
            // Counter baselines are meaningless across a machine death.
            self.last = None;
            return Observation::dead();
        }
        let (busy, total) = probe.cpu_counters();
        let host_load = match self.last {
            Some((b0, t0)) if total > t0 && busy >= b0 && busy - b0 <= total - t0 => {
                (busy - b0) as f64 / (total - t0) as f64
            }
            Some((b0, t0)) if total < t0 || busy < b0 || busy - b0 > total - t0 => {
                // Counters went backwards (or busy outran total): the
                // machine or monitor restarted between samples.
                self.resets += 1;
                0.0
            }
            _ => 0.0, // first sample, or an empty window (total == t0)
        };
        self.last = Some((busy, total));
        Observation {
            host_load: host_load.clamp(0.0, 1.0),
            free_mem_mb: probe.free_mem_for_guest_mb(),
            alive: true,
        }
    }

    /// How many counter resets / inconsistent windows this monitor has
    /// detected and absorbed.
    pub fn reset_count(&self) -> u64 {
        self.resets
    }

    /// Forgets the counter baseline (e.g. after the monitor restarts).
    pub fn reset(&mut self) {
        self.last = None;
    }

    /// Captures the monitor's complete state for checkpointing. A
    /// monitor restored from the snapshot continues diffing counter
    /// streams from the same baseline, so a process restart does not
    /// masquerade as a counter reset.
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            last: self.last,
            resets: self.resets,
        }
    }

    /// Rebuilds a monitor from a [`Monitor::snapshot`].
    pub fn restore(snap: MonitorSnapshot) -> Monitor {
        Monitor {
            last: snap.last,
            resets: snap.resets,
        }
    }
}

/// Serializable view of a [`Monitor`]'s state (see [`Monitor::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorSnapshot {
    /// The counter baseline `(busy, total)` of the last consistent
    /// sample, if any.
    pub last: Option<(u64, u64)>,
    /// Counter resets absorbed so far.
    pub resets: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeProbe {
        busy: u64,
        total: u64,
        mem: u32,
        alive: bool,
    }

    impl ResourceProbe for FakeProbe {
        fn cpu_counters(&self) -> (u64, u64) {
            (self.busy, self.total)
        }
        fn free_mem_for_guest_mb(&self) -> u32 {
            self.mem
        }
        fn service_alive(&self) -> bool {
            self.alive
        }
    }

    #[test]
    fn first_sample_establishes_baseline() {
        let mut m = Monitor::new();
        let p = FakeProbe {
            busy: 100,
            total: 1000,
            mem: 512,
            alive: true,
        };
        let o = m.sample(&p);
        assert_eq!(o.host_load, 0.0);
        assert_eq!(o.free_mem_mb, 512);
        assert!(o.alive);
    }

    #[test]
    fn diff_computes_window_load() {
        let mut m = Monitor::new();
        let mut p = FakeProbe {
            busy: 0,
            total: 0,
            mem: 512,
            alive: true,
        };
        m.sample(&p);
        p.busy = 30;
        p.total = 100;
        let o = m.sample(&p);
        assert!((o.host_load - 0.3).abs() < 1e-12);
        p.busy = 30; // idle window
        p.total = 200;
        let o = m.sample(&p);
        assert_eq!(o.host_load, 0.0);
    }

    #[test]
    fn dead_service_reports_urr_and_resets() {
        let mut m = Monitor::new();
        let mut p = FakeProbe {
            busy: 0,
            total: 0,
            mem: 512,
            alive: true,
        };
        m.sample(&p);
        p.alive = false;
        let o = m.sample(&p);
        assert!(!o.alive);
        // After reboot the baseline is re-established, not diffed across
        // the outage.
        p.alive = true;
        p.busy = 1_000_000;
        p.total = 1_000_000;
        let o = m.sample(&p);
        assert_eq!(o.host_load, 0.0, "no diff across a death");
    }

    #[test]
    fn stalled_counters_report_zero() {
        let mut m = Monitor::new();
        let p = FakeProbe {
            busy: 5,
            total: 10,
            mem: 1,
            alive: true,
        };
        m.sample(&p);
        let o = m.sample(&p); // identical counters: empty window
        assert_eq!(o.host_load, 0.0);
    }

    #[test]
    fn counter_reset_rebaselines_instead_of_garbage() {
        let mut m = Monitor::new();
        let mut p = FakeProbe {
            busy: 500_000,
            total: 1_000_000,
            mem: 512,
            alive: true,
        };
        m.sample(&p);
        // Monitor restart: counters restart from (near) zero. total < t0,
        // so the old code already re-baselined — but busy-in-between
        // states must not underflow either.
        p.busy = 10;
        p.total = 100;
        let o = m.sample(&p);
        assert_eq!(o.host_load, 0.0, "reset window reports no load");
        assert_eq!(m.reset_count(), 1);
        // After re-baselining, diffs work again.
        p.busy = 40;
        p.total = 200;
        let o = m.sample(&p);
        assert!((o.host_load - 0.3).abs() < 1e-12);
        assert_eq!(m.reset_count(), 1);
    }

    #[test]
    fn negative_busy_diff_with_advancing_total_is_a_reset() {
        // The garbage case: total advanced past the baseline but busy
        // went backwards (partial reset / torn read). The naive diff
        // underflowed u64 and clamped to a 100% load spike.
        let mut m = Monitor::new();
        let mut p = FakeProbe {
            busy: 900,
            total: 1_000,
            mem: 512,
            alive: true,
        };
        m.sample(&p);
        p.busy = 100; // busy < b0 ...
        p.total = 2_000; // ... but total > t0
        let o = m.sample(&p);
        assert_eq!(
            o.host_load, 0.0,
            "inconsistent window must not fake a spike"
        );
        assert_eq!(m.reset_count(), 1);
    }

    #[test]
    fn busy_outrunning_total_is_a_reset() {
        let mut m = Monitor::new();
        let mut p = FakeProbe {
            busy: 0,
            total: 1_000,
            mem: 512,
            alive: true,
        };
        m.sample(&p);
        p.busy = 5_000; // busy diff 5000 > total diff 1000
        p.total = 2_000;
        let o = m.sample(&p);
        assert_eq!(o.host_load, 0.0);
        assert_eq!(m.reset_count(), 1);
    }

    #[test]
    fn revoked_machine_probe_reports_dead() {
        use fgcs_sim::Machine;
        let mut machine = Machine::default_linux();
        let mut mon = Monitor::new();
        assert!(mon.sample(&machine).alive);
        machine.revoke();
        let o = mon.sample(&machine);
        assert_eq!(
            o,
            Observation::dead(),
            "revocation is visible from the probe"
        );
        machine.restore_service();
        assert!(mon.sample(&machine).alive);
    }

    #[test]
    fn snapshot_restore_keeps_baseline_and_reset_count() {
        let mut m = Monitor::new();
        let mut p = FakeProbe {
            busy: 500_000,
            total: 1_000_000,
            mem: 512,
            alive: true,
        };
        m.sample(&p);
        p.busy = 10; // counter reset absorbed pre-snapshot
        p.total = 100;
        m.sample(&p);
        let mut restored = Monitor::restore(m.snapshot());
        // The restored monitor diffs from the persisted baseline (10, 100)
        // rather than re-establishing one (which would report 0).
        p.busy = 40;
        p.total = 200;
        let o = restored.sample(&p);
        assert!((o.host_load - 0.3).abs() < 1e-12, "load {}", o.host_load);
        assert_eq!(restored.reset_count(), 1, "reset count survives");
        assert_eq!(m.sample(&p).host_load, o.host_load, "matches original");
    }

    #[test]
    fn machine_probe_integration() {
        use fgcs_sim::{Machine, ProcSpec};
        let mut machine = Machine::default_linux();
        machine.spawn(ProcSpec::synthetic_host("h", 0.4, 40));
        let mut mon = Monitor::new();
        mon.sample(&machine);
        machine.run_ticks(fgcs_sim::time::secs(30));
        let o = mon.sample(&machine);
        assert!((o.host_load - 0.4).abs() < 0.05, "load {}", o.host_load);
        assert!(o.alive);
        assert!(o.free_mem_mb > 0);
    }
}
