//! Guest-management policies — the design space of §3.2.2.
//!
//! The paper argues for the two-threshold policy by elimination:
//!
//! * *gradually decreasing* the guest priority from 0 to 19 under heavy
//!   host load "does not achieve additional benefit ... it introduces
//!   redundancy to managing guest jobs at runtime";
//! * *always enforcing the lowest priority* "is too conservative" — the
//!   guest loses ~2% CPU it could have had under light host load;
//! * *terminating the guest whenever a host application starts* "makes
//!   it a coarse-grained cycle sharing system" (the SETI@home model).
//!
//! This module makes each of those alternatives executable so the
//! argument can be reproduced quantitatively (experiment X4/X5): every
//! policy is a small state machine from load observations to guest
//! actions, run by [`run_policy`] against a live simulated machine.

use fgcs_sim::machine::{Machine, MachineConfig};
use fgcs_sim::proc::{Pid, ProcSpec};
use fgcs_sim::time::secs;

use crate::model::Thresholds;
use crate::monitor::{Monitor, Observation};

/// What a policy wants done to the guest after a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// Leave the guest as is.
    Stay,
    /// Set the guest's nice value.
    SetNice(i8),
    /// SIGSTOP the guest.
    Suspend,
    /// SIGCONT the guest.
    Resume,
    /// Kill the guest.
    Terminate,
}

/// A guest-management policy: a function from observations to actions.
pub trait GuestPolicy {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// Decides the action for the observation taken at time `t` (ticks).
    fn decide(&mut self, t: u64, obs: &Observation) -> PolicyAction;
}

/// The paper's policy: default priority below `Th1`, nice 19 between
/// the thresholds, suspend on transient spikes, terminate when the
/// spike persists. (A thin, detector-free re-statement used for policy
/// comparisons; the production path is [`crate::detector`].)
#[derive(Debug, Clone)]
pub struct TwoThresholdPolicy {
    thresholds: Thresholds,
    spike_tolerance: u64,
    spike_since: Option<u64>,
    suspended: bool,
    nice: i8,
}

impl TwoThresholdPolicy {
    /// Creates the policy with a spike tolerance in ticks.
    pub fn new(thresholds: Thresholds, spike_tolerance: u64) -> Self {
        TwoThresholdPolicy {
            thresholds,
            spike_tolerance,
            spike_since: None,
            suspended: false,
            nice: 0,
        }
    }
}

impl GuestPolicy for TwoThresholdPolicy {
    fn name(&self) -> &'static str {
        "two-threshold"
    }

    fn decide(&mut self, t: u64, obs: &Observation) -> PolicyAction {
        use crate::model::LoadBand::*;
        match self.thresholds.classify(obs.host_load) {
            Excessive => match self.spike_since {
                None => {
                    self.spike_since = Some(t);
                    self.suspended = true;
                    PolicyAction::Suspend
                }
                Some(s0) if t.saturating_sub(s0) >= self.spike_tolerance => PolicyAction::Terminate,
                Some(_) => PolicyAction::Stay,
            },
            band => {
                if self.suspended {
                    self.suspended = false;
                    self.spike_since = None;
                    return PolicyAction::Resume;
                }
                self.spike_since = None;
                let want = if band == Light { 0 } else { 19 };
                if want != self.nice {
                    self.nice = want;
                    PolicyAction::SetNice(want)
                } else {
                    PolicyAction::Stay
                }
            }
        }
    }
}

/// §3.2.2 alternative 1: gradually decrease the guest priority as host
/// load grows — nice tracks the load linearly between the thresholds.
#[derive(Debug, Clone)]
pub struct GradualPolicy {
    thresholds: Thresholds,
    nice: i8,
}

impl GradualPolicy {
    /// Creates the policy.
    pub fn new(thresholds: Thresholds) -> Self {
        GradualPolicy {
            thresholds,
            nice: 0,
        }
    }
}

impl GuestPolicy for GradualPolicy {
    fn name(&self) -> &'static str {
        "gradual"
    }

    fn decide(&mut self, _t: u64, obs: &Observation) -> PolicyAction {
        let Thresholds { th1, th2 } = self.thresholds;
        let frac = ((obs.host_load - th1) / (th2 - th1).max(1e-9)).clamp(0.0, 1.0);
        let want = (frac * 19.0).round() as i8;
        if want != self.nice {
            self.nice = want;
            PolicyAction::SetNice(want)
        } else {
            PolicyAction::Stay
        }
    }
}

/// §3.2.2 alternative 2 (the Entropia model): the guest always runs at
/// the lowest priority, no further management.
#[derive(Debug, Clone, Default)]
pub struct AlwaysLowestPolicy {
    set: bool,
}

impl GuestPolicy for AlwaysLowestPolicy {
    fn name(&self) -> &'static str {
        "always-lowest"
    }

    fn decide(&mut self, _t: u64, _obs: &Observation) -> PolicyAction {
        if self.set {
            PolicyAction::Stay
        } else {
            self.set = true;
            PolicyAction::SetNice(19)
        }
    }
}

/// The coarse-grained extreme (the SETI@home model): suspend the guest
/// whenever there is *any* noticeable host activity, resume only when
/// the machine is essentially idle.
#[derive(Debug, Clone)]
pub struct CoarseGrainedPolicy {
    /// Host load above which the guest is suspended.
    pub activity_threshold: f64,
    suspended: bool,
}

impl CoarseGrainedPolicy {
    /// Creates the policy with a 5% activity threshold.
    pub fn new() -> Self {
        CoarseGrainedPolicy {
            activity_threshold: 0.05,
            suspended: false,
        }
    }
}

impl Default for CoarseGrainedPolicy {
    fn default() -> Self {
        CoarseGrainedPolicy::new()
    }
}

impl GuestPolicy for CoarseGrainedPolicy {
    fn name(&self) -> &'static str {
        "coarse-grained"
    }

    fn decide(&mut self, _t: u64, obs: &Observation) -> PolicyAction {
        if obs.host_load > self.activity_threshold && !self.suspended {
            self.suspended = true;
            PolicyAction::Suspend
        } else if obs.host_load <= self.activity_threshold && self.suspended {
            self.suspended = false;
            PolicyAction::Resume
        } else {
            PolicyAction::Stay
        }
    }
}

/// Outcome of running one policy against one host workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyOutcome {
    /// Reduction rate of host CPU usage caused by the managed guest.
    pub host_reduction: f64,
    /// CPU usage the guest achieved.
    pub guest_usage: f64,
    /// Whether the guest was terminated by the policy.
    pub guest_terminated: bool,
    /// Renice/suspend/resume actions issued (management overhead).
    pub actions: u64,
}

/// Runs a policy-managed guest against a host workload and measures both
/// sides, mirroring [`crate::contention::measure_group`]'s protocol
/// (isolated baseline first, then the managed run).
pub fn run_policy(
    machine_cfg: &MachineConfig,
    hosts: &[ProcSpec],
    policy: &mut dyn GuestPolicy,
    sample_period: u64,
    warmup_secs: u64,
    measure_secs: u64,
) -> PolicyOutcome {
    // Isolated baseline.
    let mut alone = Machine::new(machine_cfg.clone());
    for h in hosts {
        alone.spawn(h.clone());
    }
    alone.run_ticks(secs(warmup_secs));
    let iso = alone.measure(secs(measure_secs));

    // Managed run.
    let mut m = Machine::new(machine_cfg.clone());
    for h in hosts {
        m.spawn(h.clone());
    }
    let guest: Pid = m.spawn(ProcSpec::cpu_bound_guest("guest", 0));
    let mut monitor = Monitor::new();
    let mut actions = 0u64;
    let mut terminated = false;

    let total_ticks = secs(warmup_secs + measure_secs);
    let mut before = None;
    let mut next_sample = 0u64;
    while m.now() < total_ticks {
        if m.now() >= next_sample {
            let obs = monitor.sample(&m);
            if !terminated {
                match policy.decide(m.now(), &obs) {
                    PolicyAction::Stay => {}
                    PolicyAction::SetNice(n) => {
                        let _ = m.renice(guest, n);
                        actions += 1;
                    }
                    PolicyAction::Suspend => {
                        let _ = m.suspend(guest);
                        actions += 1;
                    }
                    PolicyAction::Resume => {
                        let _ = m.resume(guest);
                        actions += 1;
                    }
                    PolicyAction::Terminate => {
                        let _ = m.kill(guest);
                        terminated = true;
                        actions += 1;
                    }
                }
            }
            next_sample = m.now() + sample_period;
        }
        if m.now() == secs(warmup_secs) {
            before = Some(m.accounting());
        }
        m.step();
    }
    let acct = m.accounting().since(&before.unwrap_or_default());
    let lh_isolated = iso.host_load();
    let lh_managed = acct.host_load();
    PolicyOutcome {
        host_reduction: if lh_isolated > 0.0 {
            ((lh_isolated - lh_managed) / lh_isolated).max(0.0)
        } else {
            0.0
        },
        guest_usage: acct.guest_load(),
        guest_terminated: terminated,
        actions,
    }
}

/// The standard policy lineup for comparisons.
pub fn standard_policies(thresholds: Thresholds) -> Vec<Box<dyn GuestPolicy>> {
    vec![
        Box::new(TwoThresholdPolicy::new(
            thresholds,
            fgcs_sim::time::minutes(1),
        )),
        Box::new(GradualPolicy::new(thresholds)),
        Box::new(AlwaysLowestPolicy::default()),
        Box::new(CoarseGrainedPolicy::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_sim::workloads::synthetic;

    fn obs(load: f64) -> Observation {
        Observation {
            host_load: load,
            free_mem_mb: 900,
            alive: true,
        }
    }

    #[test]
    fn two_threshold_decision_table() {
        let mut p = TwoThresholdPolicy::new(Thresholds::LINUX_TESTBED, 600);
        assert_eq!(p.decide(0, &obs(0.1)), PolicyAction::Stay); // already nice 0
        assert_eq!(p.decide(10, &obs(0.4)), PolicyAction::SetNice(19));
        assert_eq!(p.decide(20, &obs(0.4)), PolicyAction::Stay);
        assert_eq!(p.decide(30, &obs(0.9)), PolicyAction::Suspend);
        assert_eq!(p.decide(40, &obs(0.9)), PolicyAction::Stay); // within tolerance
        assert_eq!(p.decide(50, &obs(0.3)), PolicyAction::Resume);
        assert_eq!(p.decide(60, &obs(0.9)), PolicyAction::Suspend);
        assert_eq!(p.decide(700, &obs(0.9)), PolicyAction::Terminate);
    }

    #[test]
    fn gradual_tracks_load() {
        let mut p = GradualPolicy::new(Thresholds::LINUX_TESTBED);
        assert_eq!(p.decide(0, &obs(0.1)), PolicyAction::Stay); // nice stays 0
        assert_eq!(p.decide(1, &obs(0.4)), PolicyAction::SetNice(10));
        assert_eq!(p.decide(2, &obs(0.4)), PolicyAction::Stay);
        assert_eq!(p.decide(3, &obs(0.9)), PolicyAction::SetNice(19));
        assert_eq!(p.decide(4, &obs(0.05)), PolicyAction::SetNice(0));
    }

    #[test]
    fn always_lowest_sets_once() {
        let mut p = AlwaysLowestPolicy::default();
        assert_eq!(p.decide(0, &obs(0.0)), PolicyAction::SetNice(19));
        assert_eq!(p.decide(1, &obs(0.9)), PolicyAction::Stay);
    }

    #[test]
    fn coarse_grained_toggles_on_any_activity() {
        let mut p = CoarseGrainedPolicy::new();
        assert_eq!(p.decide(0, &obs(0.3)), PolicyAction::Suspend);
        assert_eq!(p.decide(1, &obs(0.3)), PolicyAction::Stay);
        assert_eq!(p.decide(2, &obs(0.01)), PolicyAction::Resume);
        assert_eq!(p.decide(3, &obs(0.01)), PolicyAction::Stay);
    }

    #[test]
    fn run_policy_measures_both_sides() {
        let hosts = [synthetic::host_process("h", 0.3)];
        let mut policy = AlwaysLowestPolicy::default();
        let out = run_policy(
            &MachineConfig::default(),
            &hosts,
            &mut policy,
            secs(2),
            5,
            60,
        );
        assert!(out.host_reduction < 0.05, "{out:?}");
        assert!(out.guest_usage > 0.5, "{out:?}");
        assert!(!out.guest_terminated);
    }

    #[test]
    fn coarse_grained_wastes_the_machine() {
        // Under a 30% host workload the coarse-grained policy keeps the
        // guest suspended almost always, harvesting nearly nothing.
        let hosts = [synthetic::host_process("h", 0.3)];
        let mut coarse = CoarseGrainedPolicy::new();
        let coarse_out = run_policy(
            &MachineConfig::default(),
            &hosts,
            &mut coarse,
            secs(2),
            5,
            60,
        );
        let mut fine = TwoThresholdPolicy::new(Thresholds::LINUX_TESTBED, secs(60));
        let fine_out = run_policy(&MachineConfig::default(), &hosts, &mut fine, secs(2), 5, 60);
        assert!(
            fine_out.guest_usage > coarse_out.guest_usage + 0.2,
            "fine {fine_out:?} coarse {coarse_out:?}"
        );
    }

    #[test]
    fn two_threshold_terminates_under_sustained_overload() {
        let hosts = [synthetic::host_process("h", 0.9)];
        let mut policy = TwoThresholdPolicy::new(Thresholds::LINUX_TESTBED, secs(60));
        let out = run_policy(
            &MachineConfig::default(),
            &hosts,
            &mut policy,
            secs(2),
            5,
            120,
        );
        assert!(out.guest_terminated, "{out:?}");
        assert!(out.host_reduction < 0.1, "{out:?}");
    }
}
