//! Empirical cumulative distribution functions.
//!
//! Figure 6 of the paper plots the cumulative distribution of
//! availability-interval lengths for weekdays and weekends; [`Ecdf`] is
//! the exact object behind such a plot.

use crate::quantile::quantile_sorted;

/// An empirical CDF built from a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF. NaN samples are dropped.
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Ecdf { sorted }
    }

    /// Number of (non-NaN) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` = fraction of samples `<= x`. Returns 0 for an empty ECDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample `v` with `F(v) >= p` (`0 < p <= 1`).
    pub fn inverse(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&p) {
            return None;
        }
        if p == 0.0 {
            return Some(self.sorted[0]);
        }
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// Interpolated sample quantile (type 7), for summary statistics.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        Some(quantile_sorted(&self.sorted, q))
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Fraction of samples in `(lo, hi]`.
    pub fn fraction_between(&self, lo: f64, hi: f64) -> f64 {
        (self.eval(hi) - self.eval(lo)).max(0.0)
    }

    /// Evaluates the ECDF at `n` evenly spaced points spanning the sample
    /// range, yielding `(x, F(x))` pairs — the series a plot would draw.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if n == 1 || hi == lo {
            return vec![(hi, self.eval(hi))];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basics() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn eval_with_duplicates() {
        let e = Ecdf::new(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(e.eval(1.0), 0.75);
        assert_eq!(e.eval(1.5), 0.75);
    }

    #[test]
    fn empty_is_zero_everywhere() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.inverse(0.5), None);
    }

    #[test]
    fn nan_dropped() {
        let e = Ecdf::new(&[1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn inverse_roundtrip() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.inverse(0.2), Some(10.0));
        assert_eq!(e.inverse(0.21), Some(20.0));
        assert_eq!(e.inverse(1.0), Some(50.0));
    }

    #[test]
    fn fraction_between_window() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        // (2, 4] contains 3 and 4.
        assert!((e.fraction_between(2.0, 4.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_and_spans_range() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        let c = e.curve(11);
        assert_eq!(c.len(), 11);
        assert_eq!(c[0].0, 1.0);
        assert_eq!(c[10].0, 5.0);
        assert!(c.windows(2).all(|w| w[1].1 >= w[0].1));
        assert_eq!(c[10].1, 1.0);
    }

    #[test]
    fn curve_degenerate_cases() {
        assert!(Ecdf::new(&[]).curve(5).is_empty());
        let single = Ecdf::new(&[2.0]).curve(5);
        assert_eq!(single, vec![(2.0, 1.0)]);
    }

    #[test]
    fn mean_matches() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0]);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }
}
