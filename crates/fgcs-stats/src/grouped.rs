//! Keyed statistics: one [`OnlineStats`] accumulator per key.
//!
//! Figure 7 of the paper shows, for each hour of the day, the mean number
//! of unavailability occurrences together with the min–max range over all
//! observed days. That is exactly a `GroupedStats<usize>` keyed by hour.

use std::collections::BTreeMap;

use crate::desc::OnlineStats;

/// A map from keys to streaming statistics, iterated in key order.
#[derive(Debug, Clone, Default)]
pub struct GroupedStats<K: Ord + Clone> {
    groups: BTreeMap<K, OnlineStats>,
}

impl<K: Ord + Clone> GroupedStats<K> {
    /// Creates an empty grouped accumulator.
    pub fn new() -> Self {
        GroupedStats {
            groups: BTreeMap::new(),
        }
    }

    /// Adds an observation under `key`.
    pub fn push(&mut self, key: K, value: f64) {
        self.groups.entry(key).or_default().push(value);
    }

    /// Statistics for one key, if any observation was recorded.
    pub fn get(&self, key: &K) -> Option<&OnlineStats> {
        self.groups.get(key)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterates `(key, stats)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &OnlineStats)> {
        self.groups.iter()
    }

    /// Merges another grouped accumulator into this one.
    pub fn merge(&mut self, other: &GroupedStats<K>) {
        for (k, s) in other.groups.iter() {
            self.groups.entry(k.clone()).or_default().merge(s);
        }
    }

    /// `(key, mean, min, max)` rows in key order — the Figure 7 series.
    pub fn bands(&self) -> Vec<(K, f64, f64, f64)> {
        self.groups
            .iter()
            .map(|(k, s)| (k.clone(), s.mean(), s.min(), s.max()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_accumulate_independently() {
        let mut g: GroupedStats<u32> = GroupedStats::new();
        g.push(1, 10.0);
        g.push(1, 20.0);
        g.push(2, 5.0);
        assert_eq!(g.get(&1).unwrap().mean(), 15.0);
        assert_eq!(g.get(&2).unwrap().count(), 1);
        assert!(g.get(&3).is_none());
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut g: GroupedStats<u32> = GroupedStats::new();
        for k in [5u32, 1, 3] {
            g.push(k, k as f64);
        }
        let keys: Vec<u32> = g.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn bands_report_mean_min_max() {
        let mut g: GroupedStats<u8> = GroupedStats::new();
        g.push(4, 18.0);
        g.push(4, 20.0);
        g.push(4, 22.0);
        let bands = g.bands();
        assert_eq!(bands, vec![(4u8, 20.0, 18.0, 22.0)]);
    }

    #[test]
    fn merge_combines_groups() {
        let mut a: GroupedStats<u8> = GroupedStats::new();
        a.push(1, 1.0);
        let mut b: GroupedStats<u8> = GroupedStats::new();
        b.push(1, 3.0);
        b.push(2, 7.0);
        a.merge(&b);
        assert_eq!(a.get(&1).unwrap().mean(), 2.0);
        assert_eq!(a.get(&2).unwrap().mean(), 7.0);
    }
}
