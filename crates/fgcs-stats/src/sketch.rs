//! Mergeable streaming quantile / CDF sketch with a provable rank bound.
//!
//! The exact analysis path ([`crate::ecdf::Ecdf`], [`crate::quantile`])
//! clones and sorts every sample it summarizes, so its memory grows with
//! fleet-days. `RankSketch` replaces that with a fixed-size multi-level
//! compactor (Munro–Paterson lineage, the deterministic ancestor of the
//! KLL sketch): items live in levels of capacity `k`; an item at level
//! `l` stands for `2^l` original samples. When a level fills, it is
//! sorted and every other item survives to the level above — which
//! survivors alternates deterministically per level, so the sketch is a
//! pure function of the input sequence (no RNG, bit-reproducible).
//!
//! # Error bound
//!
//! One compaction at level `l` changes the rank estimate of any query
//! point by at most `2^l` (for a query `x`, let `j` of the `2m` compacted
//! items be `<= x`; the survivors contribute `2^l * 2 * ceil(j/2)` or
//! `2^l * 2 * floor(j/2)` in place of `2^l * j`, a difference of at most
//! `2^l`). The sketch *counts* that cost as it runs: `err` accumulates
//! `2^l` per compaction, so [`RankSketch::rank_error_bound`] is not an
//! asymptotic estimate but a certificate for this exact input. With
//! capacity `k`, level `l` compacts about `n / (k * 2^l)` times, giving
//! `err ~= n * log2(n/k) / k` — a relative rank error of
//! `log2(n/k) / k`, e.g. ~0.4% at `k = 4096`, `n = 10^8`, in ~0.5 MB.
//!
//! # Merging
//!
//! [`RankSketch::merge`] concatenates levels pairwise and re-compacts;
//! `count`, `nan_count`, min/max and the error certificate add. Merging
//! per-worker partials in a fixed order yields bit-identical results
//! regardless of how many workers produced them, which is what the fleet
//! pipeline in `fgcs-testbed` relies on.
//!
//! # NaN policy
//!
//! NaNs are counted, never stored. [`RankSketch::quantile`] refuses
//! (returns `None`) if any NaN was seen — same contract as
//! [`crate::quantile::quantile`] — while [`RankSketch::quantile_lenient`]
//! summarizes the non-NaN samples, same contract as [`Ecdf::new`]
//! dropping NaNs.
//!
//! [`Ecdf::new`]: crate::ecdf::Ecdf::new

use crate::quantile::sort_total;

/// Default level capacity: ~0.4% worst-case rank error at 10^8 samples
/// for ~0.5 MB per fully-loaded sketch.
pub const DEFAULT_K: usize = 4096;

/// A deterministic, mergeable streaming quantile/CDF sketch.
///
/// Memory is `O(k * log(n / k))` for `n` pushed samples; all estimates
/// carry the runtime-certified rank bound [`Self::rank_error_bound`].
#[derive(Debug, Clone)]
pub struct RankSketch {
    k: usize,
    /// `levels[l]` holds unsorted retained items of weight `2^l`.
    levels: Vec<Vec<f64>>,
    /// Per-level survivor parity, toggled on every compaction.
    toggles: Vec<bool>,
    /// Non-NaN samples observed (including compacted-away ones).
    count: u64,
    /// NaN samples observed (counted, never stored).
    nan_count: u64,
    /// Accumulated worst-case rank error from all compactions so far.
    err: u64,
    min: f64,
    max: f64,
}

impl RankSketch {
    /// Creates a sketch with level capacity `k` (clamped to `>= 4` and
    /// rounded down to even, so a full level always compacts cleanly).
    pub fn new(k: usize) -> Self {
        let k = k.max(4) & !1;
        RankSketch {
            k,
            levels: vec![Vec::new()],
            toggles: vec![false],
            count: 0,
            nan_count: 0,
            err: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Level capacity this sketch was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Non-NaN samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// NaN samples observed (they are counted but never stored).
    pub fn nan_count(&self) -> u64 {
        self.nan_count
    }

    /// True if no non-NaN sample has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum of the non-NaN samples (tracked outside the levels,
    /// so it never falls victim to compaction).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum of the non-NaN samples.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of items currently retained across all levels.
    pub fn stored_len(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Certified worst-case rank error of any [`Self::rank`] estimate,
    /// *for the input actually seen*: the sum of `2^l` over every
    /// compaction performed at level `l`. Quantile queries add one
    /// top-level weight of discretization — see
    /// [`Self::quantile_rank_error_bound`].
    pub fn rank_error_bound(&self) -> u64 {
        self.err
    }

    /// Certified worst-case rank error of a [`Self::quantile`] answer:
    /// the rank certificate plus one top-level item weight (consecutive
    /// retained values are at most one top-weight apart in estimated
    /// rank, so the selected value's estimated rank overshoots the
    /// target by less than that).
    pub fn quantile_rank_error_bound(&self) -> u64 {
        self.err + self.top_weight()
    }

    fn top_weight(&self) -> u64 {
        1u64 << (self.levels.len() - 1)
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nan_count += 1;
            return;
        }
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.levels[0].push(x);
        if self.levels[0].len() >= self.k {
            self.compact(0);
        }
    }

    /// Adds every sample in `xs`.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Sorts level `l`, promotes alternating items to level `l + 1`
    /// (parity toggles per level), cascades upward. Each call adds
    /// `2^l` to the error certificate.
    fn compact(&mut self, l: usize) {
        if self.levels.len() == l + 1 {
            self.levels.push(Vec::new());
            self.toggles.push(false);
        }
        let mut buf = std::mem::take(&mut self.levels[l]);
        sort_total(&mut buf);
        // Compact an even prefix; an odd straggler (possible after
        // merge) stays behind at this level with its weight intact.
        let even = buf.len() & !1;
        let start = usize::from(self.toggles[l]);
        self.toggles[l] = !self.toggles[l];
        for i in (start..even).step_by(2) {
            self.levels[l + 1].push(buf[i]);
        }
        if even < buf.len() {
            self.levels[l].push(buf[even]);
        }
        self.err += 1u64 << l;
        if self.levels[l + 1].len() >= self.k {
            self.compact(l + 1);
        }
    }

    /// Merges `other` into `self`: levelwise concatenation plus
    /// re-compaction. Counts, NaN counts, extrema and the error
    /// certificates add. Deterministic: merging the same partials in the
    /// same order always yields a bit-identical sketch.
    ///
    /// # Panics
    /// Panics if the two sketches have different capacities `k`.
    pub fn merge(&mut self, other: &RankSketch) {
        assert_eq!(self.k, other.k, "RankSketch::merge: capacity mismatch");
        self.count += other.count;
        self.nan_count += other.nan_count;
        self.err += other.err;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
            self.toggles.push(false);
        }
        for (l, items) in other.levels.iter().enumerate() {
            self.levels[l].extend_from_slice(items);
        }
        for l in 0..self.levels.len() {
            while self.levels[l].len() >= self.k {
                self.compact(l);
            }
        }
    }

    /// Estimated number of samples `<= x`, within
    /// [`Self::rank_error_bound`] of the true count.
    pub fn rank(&self, x: f64) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(l, items)| (1u64 << l) * items.iter().filter(|v| **v <= x).count() as u64)
            .sum()
    }

    /// Estimated empirical CDF at `x` over the non-NaN samples, `None`
    /// if empty.
    pub fn cdf(&self, x: f64) -> Option<f64> {
        (self.count > 0).then(|| self.rank(x) as f64 / self.count as f64)
    }

    /// Estimated `q`-quantile. Returns `None` for an empty sketch, a `q`
    /// outside `[0, 1]`, or when any NaN was observed — the same refusal
    /// contract as [`crate::quantile::quantile`].
    ///
    /// The answer is a retained sample value whose true rank is within
    /// [`Self::quantile_rank_error_bound`] of `ceil(q * count)`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.nan_count > 0 {
            return None;
        }
        self.quantile_lenient(q)
    }

    /// Estimated `q`-quantile of the non-NaN samples, ignoring any NaNs
    /// seen — the same drop-NaNs contract as [`crate::ecdf::Ecdf::new`].
    pub fn quantile_lenient(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // Smallest retained value whose estimated rank reaches the
        // target — Ecdf::inverse semantics over the weighted items.
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut items: Vec<(f64, u64)> = self
            .levels
            .iter()
            .enumerate()
            .flat_map(|(l, lv)| lv.iter().map(move |&v| (v, 1u64 << l)))
            .collect();
        items.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cum = 0u64;
        for (v, w) in items {
            cum += w;
            if cum >= target {
                return Some(v.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Several quantiles at once (single pass over the retained items
    /// per query point; `None` entries follow [`Self::quantile`] rules).
    pub fn quantiles(&self, qs: &[f64]) -> Vec<Option<f64>> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }
}

impl Default for RankSketch {
    fn default() -> Self {
        RankSketch::new(DEFAULT_K)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::quantile;
    use crate::rng::Rng;

    /// True rank (count of values <= v) in exact data.
    fn true_rank(xs: &[f64], v: f64) -> u64 {
        xs.iter().filter(|x| **x <= v).count() as u64
    }

    #[test]
    fn small_input_is_exact() {
        let mut s = RankSketch::new(64);
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        s.extend(&xs);
        assert_eq!(s.rank_error_bound(), 0);
        assert_eq!(s.quantile(0.5), Some(24.0));
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_eq!(s.quantile(1.0), Some(49.0));
        assert_eq!(s.rank(24.0), 25);
    }

    #[test]
    fn rank_bound_holds_on_large_uniform() {
        let mut rng = Rng::new(7);
        let xs: Vec<f64> = (0..200_000).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let mut s = RankSketch::new(256);
        s.extend(&xs);
        assert!(s.stored_len() < 256 * 16, "stored {}", s.stored_len());
        for i in 1..20 {
            let q = i as f64 / 20.0;
            let v = s.quantile(q).unwrap();
            let target = (q * xs.len() as f64).ceil() as i64;
            let r = true_rank(&xs, v) as i64;
            let bound = s.quantile_rank_error_bound() as i64;
            assert!(
                (r - target).abs() <= bound,
                "q={q}: rank {r} target {target} bound {bound}"
            );
        }
        // The certificate is far below n (otherwise it is vacuous).
        assert!(s.quantile_rank_error_bound() < xs.len() as u64 / 20);
    }

    #[test]
    fn deterministic_across_runs() {
        let xs: Vec<f64> = (0u64..10_000)
            .map(|i| (i.wrapping_mul(2654435761) % 10007) as f64)
            .collect();
        let mut a = RankSketch::new(128);
        let mut b = RankSketch::new(128);
        a.extend(&xs);
        b.extend(&xs);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn merge_counts_and_extrema_add() {
        let mut a = RankSketch::new(64);
        let mut b = RankSketch::new(64);
        a.extend(&[1.0, 2.0, f64::NAN]);
        b.extend(&[-5.0, 10.0]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.nan_count(), 1);
        assert_eq!(a.min(), Some(-5.0));
        assert_eq!(a.max(), Some(10.0));
    }

    #[test]
    fn merge_order_is_deterministic() {
        let mut rng = Rng::new(11);
        let parts: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..5_000).map(|_| rng.range_f64(0.0, 100.0)).collect())
            .collect();
        let build = || {
            let mut acc = RankSketch::new(128);
            for p in &parts {
                let mut s = RankSketch::new(128);
                s.extend(p);
                acc.merge(&s);
            }
            acc
        };
        let a = build();
        let b = build();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn merged_bound_holds_vs_concat() {
        let mut rng = Rng::new(3);
        let xa: Vec<f64> = (0..30_000)
            .map(|_| rng.range_f64(0.0, 1.0).powi(3))
            .collect();
        let xb: Vec<f64> = (0..50_000).map(|_| rng.range_f64(0.5, 2.0)).collect();
        let mut a = RankSketch::new(256);
        let mut b = RankSketch::new(256);
        a.extend(&xa);
        b.extend(&xb);
        a.merge(&b);
        let mut all = xa.clone();
        all.extend_from_slice(&xb);
        assert_eq!(a.count(), all.len() as u64);
        for i in 1..10 {
            let q = i as f64 / 10.0;
            let v = a.quantile(q).unwrap();
            let target = (q * all.len() as f64).ceil() as i64;
            let r = true_rank(&all, v) as i64;
            assert!((r - target).abs() <= a.quantile_rank_error_bound() as i64);
        }
    }

    #[test]
    fn nan_policy_mirrors_exact_paths() {
        let mut s = RankSketch::new(64);
        s.extend(&[1.0, f64::NAN, 3.0]);
        // Strict accessor refuses, like quantile::quantile.
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(quantile(&[1.0, f64::NAN, 3.0], 0.5), None);
        // Lenient accessor drops NaN, like Ecdf::new.
        assert_eq!(s.quantile_lenient(0.5), Some(1.0));
        assert_eq!(s.nan_count(), 1);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn constant_input_collapses() {
        let mut s = RankSketch::new(16);
        for _ in 0..10_000 {
            s.push(4.25);
        }
        for q in [0.0, 0.1, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(4.25), "q={q}");
        }
        assert_eq!(s.cdf(4.25), Some(1.0));
        assert_eq!(s.cdf(4.0), Some(0.0));
    }

    #[test]
    fn empty_and_bad_q() {
        let s = RankSketch::default();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.cdf(0.0), None);
        assert_eq!(s.min(), None);
        let mut s2 = RankSketch::new(16);
        s2.push(1.0);
        assert_eq!(s2.quantile(1.5), None);
        assert_eq!(s2.quantile(-0.1), None);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn merge_rejects_capacity_mismatch() {
        let mut a = RankSketch::new(16);
        let b = RankSketch::new(32);
        a.merge(&b);
    }
}
