//! Fixed-width histograms.

/// A histogram with `bins` equal-width bins covering `[lo, hi)`, plus
/// explicit underflow/overflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins >= 1` bins.
    ///
    /// # Panics
    /// Panics if `bins == 0`, bounds are non-finite, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1, "at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad bounds");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds every value of a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Per-bin raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i as f64 + 1.0))
    }

    /// Per-bin fraction of all observations (sums to 1 with no
    /// under/overflow). Returns zeros when empty.
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Merges a histogram with identical binning.
    ///
    /// # Panics
    /// Panics if the binnings differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo);
        assert_eq!(self.hi, other.hi);
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_receive_values() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend(&[0.0, 1.9, 2.0, 5.5, 9.99]);
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend(&[-1.0, 0.5, 1.0, 2.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn bin_geometry() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_edges(2), (4.0, 6.0));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.extend(&[0.5, 1.5, 2.5, 3.5]);
        let f = h.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(f.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn empty_fractions_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.fractions(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 2.0, 2);
        a.add(0.5);
        let mut b = Histogram::new(0.0, 2.0, 2);
        b.add(1.5);
        b.add(5.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_binning() {
        let mut a = Histogram::new(0.0, 2.0, 2);
        let b = Histogram::new(0.0, 2.0, 3);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }
}
