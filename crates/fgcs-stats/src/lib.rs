//! Statistics substrate for the `fgcs` workspace.
//!
//! The ICPP'06 FGCS study is, at heart, an empirical-statistics paper:
//! reduction-rate curves, cumulative distributions of interval lengths,
//! per-hour frequency bands. The offline crate set available to this
//! workspace has no statistics library of the required shape, so this
//! crate implements the needed machinery from scratch:
//!
//! * [`rng`] — a deterministic, seedable PRNG (xoshiro256++ seeded through
//!   SplitMix64) with stream splitting, so every simulation in the
//!   workspace is reproducible bit-for-bit from a single seed.
//! * [`dist`] — the random distributions used by the workload generators
//!   (uniform, Bernoulli, exponential, Poisson, normal, log-normal,
//!   discrete/weighted with alias tables).
//! * [`desc`] — streaming descriptive statistics (Welford) with parallel
//!   merge, used by every analysis pass.
//! * [`mod@quantile`] — sample quantiles with linear interpolation.
//! * [`ecdf`] — empirical CDFs (Figure 6 of the paper).
//! * [`hist`] — fixed-width histograms.
//! * [`grouped`] — keyed statistics (mean + range per hour-of-day bucket,
//!   Figure 7 of the paper).
//! * [`smooth`] — moving averages, exponential smoothing, trimmed means
//!   (the paper's "statistics on history trace to alleviate the effects
//!   of irregular data").
//! * [`corr`] — correlation and coefficient-of-variation helpers used by
//!   the daily-pattern regularity analysis.
//! * [`bootstrap`] — percentile-bootstrap confidence intervals for the
//!   trace statistics.
//! * [`sketch`] — a mergeable, deterministic streaming quantile/CDF
//!   sketch with a runtime-certified rank-error bound, for fleet-scale
//!   analyses that cannot afford sort-the-world.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod corr;
pub mod desc;
pub mod dist;
pub mod ecdf;
pub mod grouped;
pub mod hist;
pub mod quantile;
pub mod rng;
pub mod sketch;
pub mod smooth;

pub use desc::OnlineStats;
pub use ecdf::Ecdf;
pub use hist::Histogram;
pub use quantile::{median, quantile};
pub use rng::Rng;
pub use sketch::RankSketch;
