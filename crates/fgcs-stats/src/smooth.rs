//! Smoothing and robust-summary helpers.
//!
//! The paper proposes that "an aggressive prediction algorithm would ...
//! use statistics on history trace to alleviate the effects of irregular
//! data" (§5.3). These are the tools the predictors in `fgcs-predict`
//! use for that.

/// Centered moving average with window `2*half + 1`, shrinking at the
/// edges. Returns an empty vector for empty input.
pub fn moving_average(xs: &[f64], half: usize) -> Vec<f64> {
    let n = xs.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let window = &xs[lo..hi];
        out.push(window.iter().sum::<f64>() / window.len() as f64);
    }
    out
}

/// Simple exponential smoothing: `s[0] = x[0]`,
/// `s[t] = alpha * x[t] + (1 - alpha) * s[t-1]`.
///
/// # Panics
/// Panics if `alpha` is outside `[0, 1]`.
pub fn exp_smooth(xs: &[f64], alpha: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&alpha), "alpha in [0,1]");
    let mut out = Vec::with_capacity(xs.len());
    let mut s = f64::NAN;
    for (i, &x) in xs.iter().enumerate() {
        s = if i == 0 {
            x
        } else {
            alpha * x + (1.0 - alpha) * s
        };
        out.push(s);
    }
    out
}

/// Mean after discarding the `trim` smallest and `trim` largest values.
///
/// Falls back to the plain mean when fewer than `2*trim + 1` values are
/// available. Returns `None` for empty or NaN-bearing input (like
/// [`crate::quantile::quantile`], it refuses to summarize corrupt data
/// rather than panic or return NaN).
pub fn trimmed_mean(xs: &[f64], trim: usize) -> Option<f64> {
    let sorted = crate::quantile::sorted_copy(xs)?;
    let kept: &[f64] = if sorted.len() > 2 * trim {
        &sorted[trim..sorted.len() - trim]
    } else {
        &sorted
    };
    Some(kept.iter().sum::<f64>() / kept.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_flat_is_identity() {
        let xs = vec![2.0; 10];
        assert_eq!(moving_average(&xs, 2), xs);
    }

    #[test]
    fn moving_average_smooths_spike() {
        let xs = [0.0, 0.0, 9.0, 0.0, 0.0];
        let s = moving_average(&xs, 1);
        assert_eq!(s[2], 3.0);
        assert_eq!(s[1], 3.0);
        assert_eq!(s[0], 0.0);
    }

    #[test]
    fn trimmed_mean_rejects_nan_instead_of_panicking() {
        // partial_cmp().expect(..) used to abort the whole analysis when
        // a NaN slipped through a recovered trace; now the summary just
        // declines.
        assert_eq!(trimmed_mean(&[1.0, f64::NAN, 3.0], 1), None);
        assert_eq!(trimmed_mean(&[f64::NAN], 0), None);
        assert_eq!(trimmed_mean(&[1.0, 2.0, 30.0], 1), Some(2.0));
    }

    #[test]
    fn moving_average_empty() {
        assert!(moving_average(&[], 3).is_empty());
    }

    #[test]
    fn exp_smooth_alpha_one_is_identity() {
        let xs = [1.0, 5.0, 2.0];
        assert_eq!(exp_smooth(&xs, 1.0), xs.to_vec());
    }

    #[test]
    fn exp_smooth_alpha_zero_holds_first() {
        let xs = [4.0, 5.0, 6.0];
        assert_eq!(exp_smooth(&xs, 0.0), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn exp_smooth_middle() {
        let s = exp_smooth(&[0.0, 10.0], 0.5);
        assert_eq!(s, vec![0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "alpha in [0,1]")]
    fn exp_smooth_rejects_bad_alpha() {
        exp_smooth(&[1.0], 1.5);
    }

    #[test]
    fn trimmed_mean_discards_outliers() {
        // One absurd outlier (the 4–5 AM updatedb spike analogue).
        let xs = [1.0, 2.0, 3.0, 100.0];
        let tm = trimmed_mean(&xs, 1).unwrap();
        assert_eq!(tm, 2.5);
    }

    #[test]
    fn trimmed_mean_small_input_falls_back() {
        assert_eq!(trimmed_mean(&[5.0], 2), Some(5.0));
        assert_eq!(trimmed_mean(&[], 1), None);
    }
}
