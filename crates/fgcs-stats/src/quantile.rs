//! Sample quantiles.
//!
//! Linear interpolation between order statistics (the "type 7" estimator
//! used by R and NumPy), which is what the paper's interval-length
//! summaries ("about 60% of intervals are between 2 and 4 hours") call
//! for.

/// Sorts a slice of floats ascending with `total_cmp` — the one sort
/// every summary in this crate (quantiles, trimmed means, bootstrap
/// percentiles, sketch compaction) routes through.
pub fn sort_total(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

/// Copies `xs` into a sorted vector, detecting NaN in the same pass as
/// the copy (no separate `any()` scan). Returns `None` — without
/// sorting — if the input is empty or contains NaN.
pub fn sorted_copy(xs: &[f64]) -> Option<Vec<f64>> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = Vec::with_capacity(xs.len());
    for &x in xs {
        if x.is_nan() {
            return None;
        }
        sorted.push(x);
    }
    sort_total(&mut sorted);
    Some(sorted)
}

/// Returns the `q`-quantile (`0 <= q <= 1`) of the samples.
///
/// The input does not need to be sorted. Returns `None` for an empty
/// input or a `q` outside `[0, 1]`, or when the data contains NaN.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    Some(quantile_sorted(&sorted_copy(xs)?, q))
}

/// In-place fast path: sorts `xs` and reads the quantile from it, with
/// no clone. Same `None` contract as [`quantile`]; on `None` the slice
/// may or may not have been sorted.
pub fn quantile_in_place(xs: &mut [f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    sort_total(xs);
    Some(quantile_sorted(xs, q))
}

/// `q`-quantile of an already ascending-sorted, non-empty slice.
///
/// # Panics
/// Panics (debug) if the slice is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] + frac * (sorted[hi] - sorted[lo])
    }
}

/// Median shorthand.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Several quantiles in one sort.
pub fn quantiles(xs: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    let sorted = sorted_copy(xs)?;
    qs.iter()
        .map(|&q| {
            if (0.0..=1.0).contains(&q) {
                Some(quantile_sorted(&sorted, q))
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn extremes_are_min_max() {
        let xs = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(9.0));
    }

    #[test]
    fn interpolation_matches_numpy_type7() {
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.25), Some(1.75));
        // numpy.percentile([1,2,3,4,5], 40) == 2.6
        let q = quantile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.4).unwrap();
        assert!((q - 2.6).abs() < 1e-12);
    }

    #[test]
    fn singleton() {
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[1.0, f64::NAN], 0.5), None);
    }

    #[test]
    fn quantiles_batch_matches_individual() {
        let xs = [2.0, 8.0, 4.0, 6.0, 1.0];
        let batch = quantiles(&xs, &[0.1, 0.5, 0.9]).unwrap();
        for (i, q) in [0.1, 0.5, 0.9].iter().enumerate() {
            assert_eq!(batch[i], quantile(&xs, *q).unwrap());
        }
    }

    #[test]
    fn in_place_matches_cloning_path() {
        let xs = [5.0, 1.0, 9.0, 3.0, 3.0, -2.0];
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let mut scratch = xs;
            assert_eq!(quantile_in_place(&mut scratch, q), quantile(&xs, q));
        }
        assert_eq!(quantile_in_place(&mut [], 0.5), None);
        assert_eq!(quantile_in_place(&mut [1.0, f64::NAN], 0.5), None);
        assert_eq!(quantile_in_place(&mut [1.0], 1.5), None);
    }

    #[test]
    fn sorted_copy_contract() {
        assert_eq!(sorted_copy(&[3.0, 1.0, 2.0]), Some(vec![1.0, 2.0, 3.0]));
        assert_eq!(sorted_copy(&[]), None);
        assert_eq!(sorted_copy(&[1.0, f64::NAN]), None);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = quantile(&xs, q).unwrap();
            assert!(v >= prev);
            prev = v;
        }
    }
}
