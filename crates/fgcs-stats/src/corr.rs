//! Correlation measures for the daily-pattern regularity analysis.
//!
//! The paper's key predictability claim (§5.3) is that "the deviations of
//! unavailability frequency over the same time window across different
//! weekdays (weekends) are small" — i.e. per-hour failure-count vectors of
//! different days are strongly correlated. These helpers quantify that.

/// Pearson correlation of two equal-length series.
///
/// Returns `None` if the lengths differ, fewer than two points are given,
/// or either series is constant (zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Mean pairwise Pearson correlation across a set of equal-length series
/// (e.g. one per day). `None` when fewer than two usable pairs exist.
pub fn mean_pairwise_correlation(series: &[Vec<f64>]) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..series.len() {
        for j in (i + 1)..series.len() {
            if let Some(r) = pearson(&series[i], &series[j]) {
                sum += r;
                count += 1;
            }
        }
    }
    if count == 0 {
        None
    } else {
        Some(sum / count as f64)
    }
}

/// Root-mean-square deviation between two equal-length series.
pub fn rmsd(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let ss: f64 = xs.iter().zip(ys).map(|(x, y)| (x - y) * (x - y)).sum();
    Some((ss / xs.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, -1.0, 1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn mean_pairwise_on_identical_series() {
        let s = vec![vec![1.0, 2.0, 3.0]; 4];
        assert!((mean_pairwise_correlation(&s).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_pairwise_needs_two_series() {
        assert_eq!(mean_pairwise_correlation(&[vec![1.0, 2.0]]), None);
    }

    #[test]
    fn rmsd_known_value() {
        let r = rmsd(&[0.0, 0.0], &[3.0, 4.0]).unwrap();
        assert!((r - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmsd_degenerate() {
        assert_eq!(rmsd(&[], &[]), None);
        assert_eq!(rmsd(&[1.0], &[1.0, 2.0]), None);
    }
}
