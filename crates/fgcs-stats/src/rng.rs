//! Deterministic pseudo-random number generation.
//!
//! The workspace needs reproducible simulations: the same seed must yield
//! the same three-month testbed trace on every run and on every platform.
//! We therefore implement the PRNG ourselves instead of depending on an
//! external crate whose output could change between versions.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded by running
//! the 64-bit seed through **SplitMix64**, the recommended seeding
//! procedure. xoshiro256++ passes BigCrush, has a period of 2^256 − 1 and
//! supports an efficient `jump` operation that advances the state by 2^128
//! steps, which we expose as [`Rng::split`] for carving independent
//! streams for parallel simulations.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding xoshiro and useful on its own for hashing small
/// integers into well-mixed 64-bit values (e.g. per-machine sub-seeds).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator.
///
/// ```
/// use fgcs_stats::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // The all-zero state is invalid for xoshiro; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Derives a generator for a named substream, e.g. one per machine.
    ///
    /// Mixes `stream` into the seed through SplitMix64 so that nearby
    /// stream ids produce unrelated generators.
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        let mut sm = seed;
        let a = splitmix64(&mut sm);
        let mut sm2 = stream ^ 0xA076_1D64_78BD_642F;
        let b = splitmix64(&mut sm2);
        Rng::new(a ^ b.rotate_left(17))
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Requires `lo <= hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`. Requires `lo < hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Chooses a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below_usize(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Jumps the state forward by 2^128 draws and returns the *pre-jump*
    /// generator, leaving `self` in the jumped position.
    ///
    /// Calling `split` repeatedly yields a sequence of generators whose
    /// output streams are non-overlapping for any realistic draw count —
    /// the primitive used to hand one independent stream to each worker
    /// in a parallel sweep.
    pub fn split(&mut self) -> Rng {
        let child = self.clone();
        self.jump();
        child
    }

    /// Advances the state by 2^128 steps (the xoshiro256++ jump).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vectors() {
        // Reference outputs for seed 0, published with the SplitMix64
        // algorithm (first three outputs).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(0xDEAD_BEEF);
        let mut b = Rng::new(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = Rng::new(3);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 7;
            assert!(
                (c as i64 - expected as i64).abs() < (expected / 10) as i64,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn below_covers_boundaries() {
        let mut r = Rng::new(5);
        let mut saw0 = false;
        let mut saw_max = false;
        for _ in 0..10_000 {
            match r.below(4) {
                0 => saw0 = true,
                3 => saw_max = true,
                _ => {}
            }
        }
        assert!(saw0 && saw_max);
    }

    #[test]
    fn range_u64_respects_bounds() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_u64_empty_panics() {
        Rng::new(0).range_u64(5, 5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(13);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn split_streams_do_not_correlate_trivially() {
        let mut base = Rng::new(99);
        let mut a = base.split();
        let mut b = base.split();
        let matches = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn split_preserves_prefix_stream() {
        // The generator returned by split() produces what self would have
        // produced without the jump.
        let mut a = Rng::new(123);
        let mut reference = a.clone();
        let mut child = a.split();
        for _ in 0..100 {
            assert_eq!(child.next_u64(), reference.next_u64());
        }
    }

    #[test]
    fn for_stream_decorrelates_consecutive_ids() {
        let mut a = Rng::for_stream(7, 0);
        let mut b = Rng::for_stream(7, 1);
        let matches = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(21);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn golden_regression_pin() {
        // Regression pin: the exact output for a fixed seed. If this test
        // ever fails, reproducibility of every recorded experiment in
        // EXPERIMENTS.md is broken — do not "fix" the test, fix the RNG.
        let mut r = Rng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }
}
