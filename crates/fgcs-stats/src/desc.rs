//! Streaming descriptive statistics.
//!
//! [`OnlineStats`] implements Welford's algorithm for numerically stable
//! single-pass mean/variance, extended with Chan's parallel combination
//! rule so that per-worker accumulators from a parallel sweep can be
//! merged without losing precision.

/// Single-pass mean/variance/min/max accumulator.
///
/// ```
/// use fgcs_stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    /// An empty accumulator (`min`/`max` at the identity elements ±∞, so
    /// the first observation always replaces them — a derived `Default`
    /// would silently clamp every group's minimum to 0).
    fn default() -> Self {
        OnlineStats::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = OnlineStats::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (Chan et al.).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`n` denominator); 0 with fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (`n - 1` denominator); 0 with fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// `max - min`, or 0 when empty.
    pub fn range(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }

    /// Coefficient of variation `stddev/mean`; 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_equals_new() {
        assert_eq!(OnlineStats::default(), OnlineStats::new());
        assert_eq!(OnlineStats::default().min(), f64::INFINITY);
    }

    #[test]
    fn empty_is_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn known_variance() {
        // Values 2, 4, 4, 4, 5, 5, 7, 9: population variance is exactly 4.
        let s = OnlineStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_n_minus_1() {
        let s = OnlineStats::from_slice(&[1.0, 2.0, 3.0]);
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let whole = OnlineStats::from_slice(&data);
        let mut left = OnlineStats::from_slice(&data[..337]);
        let right = OnlineStats::from_slice(&data[337..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::from_slice(&[1.0, 2.0]);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Catastrophic cancellation test: values near 1e9 with tiny spread.
        let base = 1.0e9;
        let s = OnlineStats::from_slice(&[base + 1.0, base + 2.0, base + 3.0]);
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn cv_of_constant_is_zero() {
        let s = OnlineStats::from_slice(&[5.0, 5.0, 5.0]);
        assert_eq!(s.cv(), 0.0);
    }
}
