//! Bootstrap confidence intervals.
//!
//! The paper reports per-machine ranges (Table 2) and min–max bands
//! (Figure 7) from a single three-month trace. Bootstrap resampling puts
//! error bars on such statistics without distributional assumptions —
//! used by the analysis extensions to state how stable the reproduced
//! numbers are across resamples of the same trace.

use crate::quantile::{quantile_sorted, sort_total};
use crate::rng::Rng;

/// A two-sided percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Point estimate (the statistic on the original sample).
    pub estimate: f64,
    /// Upper bound.
    pub hi: f64,
    /// Nominal coverage, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// True if `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Draws `resamples` bootstrap samples (with replacement) from `data`,
/// evaluates `statistic` on each, and returns the percentile interval at
/// the given `level`. Returns `None` for an empty sample, an invalid
/// level, or a statistic that produces NaN on the original data.
pub fn bootstrap_ci<F>(
    data: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    rng: &mut Rng,
) -> Option<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64,
{
    if data.is_empty() || !(0.0 < level && level < 1.0) || resamples == 0 {
        return None;
    }
    let estimate = statistic(data);
    if estimate.is_nan() {
        return None;
    }
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; data.len()];
    for _ in 0..resamples {
        for slot in &mut resample {
            *slot = data[rng.below_usize(data.len())];
        }
        let s = statistic(&resample);
        if !s.is_nan() {
            stats.push(s);
        }
    }
    if stats.is_empty() {
        return None;
    }
    sort_total(&mut stats);
    let alpha = (1.0 - level) / 2.0;
    Some(ConfidenceInterval {
        lo: quantile_sorted(&stats, alpha),
        estimate,
        hi: quantile_sorted(&stats, 1.0 - alpha),
        level,
    })
}

/// Bootstrap CI for the mean.
pub fn bootstrap_mean_ci(
    data: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut Rng,
) -> Option<ConfidenceInterval> {
    bootstrap_ci(
        data,
        |xs| xs.iter().sum::<f64>() / xs.len() as f64,
        resamples,
        level,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Normal, Sample};

    #[test]
    fn mean_ci_brackets_the_truth() {
        let mut rng = Rng::new(42);
        let normal = Normal::new(10.0, 2.0);
        let data: Vec<f64> = (0..500).map(|_| normal.sample(&mut rng)).collect();
        let ci = bootstrap_mean_ci(&data, 1000, 0.95, &mut rng).unwrap();
        assert!(ci.contains(10.0), "{ci:?}");
        assert!(ci.contains(ci.estimate));
        // With n = 500 and sd = 2, the 95% CI half-width is ~0.18.
        assert!(ci.width() < 0.6, "{ci:?}");
        assert!(ci.width() > 0.05, "{ci:?}");
    }

    #[test]
    fn ci_ordering_invariants() {
        let mut rng = Rng::new(7);
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ci = bootstrap_mean_ci(&data, 500, 0.9, &mut rng).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi, "{ci:?}");
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let mut rng = Rng::new(9);
        let data: Vec<f64> = (0..200).map(|i| (i as f64).sin() * 5.0).collect();
        let mut r1 = rng.split();
        let mut r2 = rng.split();
        let ci90 = bootstrap_mean_ci(&data, 2000, 0.90, &mut r1).unwrap();
        let ci99 = bootstrap_mean_ci(&data, 2000, 0.99, &mut r2).unwrap();
        assert!(ci99.width() > ci90.width(), "90: {ci90:?} 99: {ci99:?}");
    }

    #[test]
    fn custom_statistic_median() {
        let mut rng = Rng::new(11);
        let data: Vec<f64> = (0..301).map(|i| i as f64).collect();
        let ci = bootstrap_ci(
            &data,
            |xs| crate::quantile::median(xs).unwrap(),
            500,
            0.95,
            &mut rng,
        )
        .unwrap();
        assert!(ci.contains(150.0), "{ci:?}");
    }

    #[test]
    fn constant_data_gives_zero_width() {
        let mut rng = Rng::new(3);
        let data = vec![4.2; 50];
        let ci = bootstrap_mean_ci(&data, 200, 0.95, &mut rng).unwrap();
        assert!((ci.lo - 4.2).abs() < 1e-12, "{ci:?}");
        assert!((ci.hi - 4.2).abs() < 1e-12, "{ci:?}");
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let mut rng = Rng::new(1);
        assert!(bootstrap_mean_ci(&[], 100, 0.95, &mut rng).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 0.0, &mut rng).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 1.0, &mut rng).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0, 0.95, &mut rng).is_none());
    }

    #[test]
    fn deterministic_with_same_rng_seed() {
        let data: Vec<f64> = (0..50).map(|i| i as f64 * 0.3).collect();
        let a = bootstrap_mean_ci(&data, 300, 0.95, &mut Rng::new(5)).unwrap();
        let b = bootstrap_mean_ci(&data, 300, 0.95, &mut Rng::new(5)).unwrap();
        assert_eq!(a, b);
    }
}
