//! Random distributions used by the workload generators.
//!
//! Everything here is driven by the deterministic [`Rng`], so sampled
//! workloads are reproducible. Each distribution is a small value type
//! with a `sample(&mut Rng)` method; a [`Sample`] trait unifies them for
//! generic code.

use crate::rng::Rng;

/// A distribution that can be sampled with an [`Rng`].
pub trait Sample {
    /// The sampled value type.
    type Output;
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng) -> Self::Output;
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    type Output = f64;
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Bernoulli distribution: `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution. `p` is clamped to `[0, 1]`.
    pub fn new(p: f64) -> Self {
        Bernoulli {
            p: p.clamp(0.0, 1.0),
        }
    }
}

impl Sample for Bernoulli {
    type Output = bool;
    fn sample(&self, rng: &mut Rng) -> bool {
        rng.chance(self.p)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used for inter-arrival times of user sessions and failure events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Panics
    /// Panics if `lambda <= 0` or is non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "rate must be positive");
        Exponential { lambda }
    }

    /// Creates from the mean instead of the rate.
    pub fn with_mean(mean: f64) -> Self {
        Exponential::new(1.0 / mean)
    }
}

impl Sample for Exponential {
    type Output = f64;
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF; (1 - u) keeps the argument strictly positive.
        -(1.0 - rng.f64()).ln() / self.lambda
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Knuth's product method for small means; for large means a
/// normal approximation with continuity correction, which is accurate to
/// well under a count for the `lambda` values used by the lab workload
/// generator and avoids the O(`lambda`) cost of the exact method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda >= 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda >= 0.0);
        Poisson { lambda }
    }
}

impl Sample for Poisson {
    type Output = u64;
    fn sample(&self, rng: &mut Rng) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            let limit = (-self.lambda).exp();
            let mut product = rng.f64();
            let mut count = 0u64;
            while product > limit {
                product *= rng.f64();
                count += 1;
            }
            count
        } else {
            let normal = Normal::new(self.lambda, self.lambda.sqrt());
            let x = normal.sample(rng) + 0.5;
            if x < 0.0 {
                0
            } else {
                x.floor() as u64
            }
        }
    }
}

/// Normal distribution (Box–Muller polar method, one value per draw).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation (`sd >= 0`).
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd.is_finite() && sd >= 0.0);
        Normal { mean, sd }
    }

    /// Draws a standard-normal variate.
    pub fn standard(rng: &mut Rng) -> f64 {
        // Marsaglia polar method; discard the spare to stay stateless.
        loop {
            let u = 2.0 * rng.f64() - 1.0;
            let v = 2.0 * rng.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Sample for Normal {
    type Output = f64;
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.mean + self.sd * Normal::standard(rng)
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu`/`sigma`.
///
/// Session lengths and burst durations in the lab model are log-normal:
/// most sessions are short, a few last many hours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates from the underlying normal parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            norm: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal with the given *median* and `sigma`
    /// (`median = exp(mu)`), which is the natural way to express
    /// "typical session is 45 minutes, heavy tail".
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0);
        LogNormal::new(median.ln(), sigma)
    }
}

impl Sample for LogNormal {
    type Output = f64;
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Discrete distribution over `0..weights.len()` with the given weights,
/// implemented with Walker's alias method: O(n) construction, O(1)
/// sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Discrete {
    /// Builds an alias table from non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && total > 0.0,
            "weights must be non-negative and sum to a positive value"
        );
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual entries are 1.0 up to rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Discrete { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

impl Sample for Discrete {
    type Output = usize;
    fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.below_usize(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 6.0);
        let mut r = Rng::new(1);
        let m = mean_of(50_000, || {
            let x = d.sample(&mut r);
            assert!((2.0..6.0).contains(&x));
            x
        });
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn bernoulli_rate() {
        let d = Bernoulli::new(0.3);
        let mut r = Rng::new(2);
        let hits = (0..100_000).filter(|_| d.sample(&mut r)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let d = Exponential::new(0.5); // mean 2
        let mut r = Rng::new(3);
        let m = mean_of(100_000, || {
            let x = d.sample(&mut r);
            assert!(x >= 0.0);
            x
        });
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn exponential_with_mean_matches() {
        let d = Exponential::with_mean(3.0);
        let mut r = Rng::new(4);
        let m = mean_of(100_000, || d.sample(&mut r));
        assert!((m - 3.0).abs() < 0.08, "mean {m}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        Exponential::new(0.0);
    }

    #[test]
    fn poisson_small_lambda_mean_and_variance() {
        let d = Poisson::new(4.0);
        let mut r = Rng::new(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let d = Poisson::new(0.0);
        let mut r = Rng::new(6);
        assert!((0..100).all(|_| d.sample(&mut r) == 0));
    }

    #[test]
    fn poisson_large_lambda_approximation() {
        let d = Poisson::new(200.0);
        let mut r = Rng::new(7);
        let n = 50_000;
        let mean = mean_of(n, || d.sample(&mut r) as f64);
        assert!((mean - 200.0).abs() < 0.8, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 3.0);
        let mut r = Rng::new(8);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let sd = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((sd - 3.0).abs() < 0.05, "sd {sd}");
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::with_median(45.0, 0.8);
        let mut r = Rng::new(9);
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[50_000];
        assert!((median / 45.0 - 1.0).abs() < 0.05, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn discrete_frequencies_match_weights() {
        let d = Discrete::new(&[1.0, 2.0, 3.0, 4.0]);
        let mut r = Rng::new(10);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = (i + 1) as f64 / 10.0;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "counts {counts:?}");
        }
    }

    #[test]
    fn discrete_single_category() {
        let d = Discrete::new(&[5.0]);
        let mut r = Rng::new(11);
        assert!((0..100).all(|_| d.sample(&mut r) == 0));
    }

    #[test]
    fn discrete_zero_weight_never_sampled() {
        let d = Discrete::new(&[1.0, 0.0, 1.0]);
        let mut r = Rng::new(12);
        assert!((0..50_000).all(|_| d.sample(&mut r) != 1));
    }

    #[test]
    #[should_panic]
    fn discrete_rejects_all_zero() {
        Discrete::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty weight vector")]
    fn discrete_rejects_empty() {
        Discrete::new(&[]);
    }
}
