//! Bounded-memory streaming versions of the §5 analyses.
//!
//! The exact path ([`crate::analysis`]) materializes every availability
//! interval before sorting it into an ECDF, so its memory grows with
//! fleet-days — fine for 20 machines × 92 days, fatal for 100k+. This
//! module folds each machine's occurrence records into fixed-size
//! accumulators the moment they are produced and then discards them:
//!
//! * **Table 2** — per-machine [`CauseCounts`] reduced on the fly into
//!   min–max [`Range`]s and percentage ranges (integer arithmetic,
//!   *exactly* equal to the exact path);
//! * **Figure 6** — interval lengths pushed into mergeable
//!   [`RankSketch`]es (weekday/weekend), quantiles within the sketch's
//!   runtime-certified rank bound of the exact ECDF;
//! * **Figure 7** — the day×hour occurrence matrix, whose size is
//!   bounded by *days*, not machines, and which is bit-identical to
//!   [`analysis::day_hour_counts`] (integer addition commutes across
//!   machines).
//!
//! [`StreamingAnalysis::merge`] combines per-worker partials; merging
//! chunk results in input order (what [`fgcs_par::par_map`] preserves)
//! makes the result bit-identical regardless of the worker count.

use fgcs_stats::sketch::RankSketch;

use crate::analysis::{
    self, machine_intervals, CauseCounts, HourlyAnalysis, Range, Regularity, Table2,
};
use crate::calendar::{day_index, day_type, DayType, SECS_PER_HOUR};
use crate::trace::{Trace, TraceRecord};

/// A running min–max fold over per-machine values, mirroring
/// `Range::over` (empty folds collapse to `0-0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RangeFold {
    min: usize,
    max: usize,
    any: bool,
}

impl RangeFold {
    fn new() -> Self {
        RangeFold {
            min: usize::MAX,
            max: 0,
            any: false,
        }
    }

    fn push(&mut self, v: usize) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.any = true;
    }

    fn merge(&mut self, o: &RangeFold) {
        if o.any {
            self.min = self.min.min(o.min);
            self.max = self.max.max(o.max);
            self.any = true;
        }
    }

    fn get(&self) -> Range {
        if self.any {
            Range {
                min: self.min,
                max: self.max,
            }
        } else {
            Range { min: 0, max: 0 }
        }
    }
}

/// The Table 2 numbers without the per-machine vector: everything the
/// paper's table reports, computable in O(1) memory per machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Summary {
    /// Machines folded in.
    pub machines: u64,
    /// Total occurrences across the fleet.
    pub occurrences: u64,
    /// Range of per-machine totals.
    pub total: Range,
    /// Range of per-machine S3 counts.
    pub cpu: Range,
    /// Range of per-machine S4 counts.
    pub mem: Range,
    /// Range of per-machine S5 counts.
    pub urr: Range,
    /// Percentage ranges relative to each machine's own total
    /// (machines with zero occurrences excluded, as in
    /// [`Table2::percentage_ranges`]).
    pub cpu_pct: Range,
    /// S4 percentage range.
    pub mem_pct: Range,
    /// S5 percentage range.
    pub urr_pct: Range,
    /// Fraction of all URR occurrences that are reboots.
    pub urr_reboot_fraction: f64,
}

impl From<&Table2> for Table2Summary {
    /// The same summary computed from the exact analysis — the
    /// equivalence oracle for the streaming path.
    fn from(t2: &Table2) -> Self {
        let (cpu_pct, mem_pct, urr_pct) = t2.percentage_ranges();
        Table2Summary {
            machines: t2.per_machine.len() as u64,
            occurrences: t2.per_machine.iter().map(|c| c.total as u64).sum(),
            total: t2.total,
            cpu: t2.cpu,
            mem: t2.mem,
            urr: t2.urr,
            cpu_pct,
            mem_pct,
            urr_pct,
            urr_reboot_fraction: t2.urr_reboot_fraction,
        }
    }
}

/// Streaming accumulator for Table 2 / Figure 6 / Figure 7 over a
/// fleet of machines. Feed one machine at a time with
/// [`StreamingAnalysis::push_machine`]; memory stays `O(days + sketch)`
/// no matter how many machines flow through.
#[derive(Debug, Clone)]
pub struct StreamingAnalysis {
    days: usize,
    span_secs: u64,
    start_weekday: u8,
    machines: u64,
    // Table 2.
    sums: CauseCounts,
    total_r: RangeFold,
    cpu_r: RangeFold,
    mem_r: RangeFold,
    urr_r: RangeFold,
    cpu_pct_r: RangeFold,
    mem_pct_r: RangeFold,
    urr_pct_r: RangeFold,
    // Figure 6.
    weekday_hours: RankSketch,
    weekend_hours: RankSketch,
    weekday_sum: f64,
    weekend_sum: f64,
    // Figure 7.
    day_hour: Vec<[u32; 24]>,
}

impl StreamingAnalysis {
    /// An empty accumulator for a trace of `days` days starting on
    /// `start_weekday`, with interval sketches of capacity `sketch_k`.
    pub fn new(days: usize, start_weekday: u8, sketch_k: usize) -> Self {
        StreamingAnalysis {
            days,
            span_secs: days as u64 * crate::calendar::SECS_PER_DAY,
            start_weekday,
            machines: 0,
            sums: CauseCounts::default(),
            total_r: RangeFold::new(),
            cpu_r: RangeFold::new(),
            mem_r: RangeFold::new(),
            urr_r: RangeFold::new(),
            cpu_pct_r: RangeFold::new(),
            mem_pct_r: RangeFold::new(),
            urr_pct_r: RangeFold::new(),
            weekday_hours: RankSketch::new(sketch_k),
            weekend_hours: RankSketch::new(sketch_k),
            weekday_sum: 0.0,
            weekend_sum: 0.0,
            day_hour: vec![[0u32; 24]; days],
        }
    }

    /// Folds an entire trace, machine by machine (including machines
    /// with no records — their zero counts widen the Table 2 ranges,
    /// exactly as the exact path counts them).
    pub fn from_trace(trace: &Trace, sketch_k: usize) -> Self {
        let mut acc = Self::new(trace.meta.days as usize, trace.meta.start_weekday, sketch_k);
        let per_machine = trace.per_machine();
        for m in 0..trace.meta.machines {
            match per_machine.get(&m) {
                Some(recs) => acc.push_machine_refs(recs),
                None => acc.push_machine_refs(&[]),
            }
        }
        acc
    }

    /// Folds one machine's complete record list (sorted by start, the
    /// order the recorder produces) and forgets it.
    pub fn push_machine(&mut self, records: &[TraceRecord]) {
        let refs: Vec<&TraceRecord> = records.iter().collect();
        self.push_machine_refs(&refs);
    }

    /// [`Self::push_machine`] over borrowed records.
    pub fn push_machine_refs(&mut self, records: &[&TraceRecord]) {
        self.machines += 1;

        // Table 2: fold this machine's counts into the ranges.
        let mut c = CauseCounts::default();
        for r in records {
            c.push_record(r);
        }
        self.sums.total += c.total;
        self.sums.cpu += c.cpu;
        self.sums.mem += c.mem;
        self.sums.urr += c.urr;
        self.sums.urr_reboots += c.urr_reboots;
        self.total_r.push(c.total);
        self.cpu_r.push(c.cpu);
        self.mem_r.push(c.mem);
        self.urr_r.push(c.urr);
        if c.total > 0 {
            self.cpu_pct_r.push((c.cpu * 100 + c.total / 2) / c.total);
            self.mem_pct_r.push((c.mem * 100 + c.total / 2) / c.total);
            self.urr_pct_r.push((c.urr * 100 + c.total / 2) / c.total);
        }

        // Figure 6: availability intervals into the sketches.
        for (s, e) in machine_intervals(records, self.span_secs) {
            let hours = (e - s) as f64 / SECS_PER_HOUR as f64;
            match day_type(day_index(s), self.start_weekday) {
                DayType::Weekday => {
                    self.weekday_hours.push(hours);
                    self.weekday_sum += hours;
                }
                DayType::Weekend => {
                    self.weekend_hours.push(hours);
                    self.weekend_sum += hours;
                }
            }
        }

        // Figure 7: hour-bin hits.
        for r in records {
            analysis::count_record_hours(&mut self.day_hour, r, self.span_secs);
        }
    }

    /// Merges a partial accumulator produced over a disjoint set of
    /// machines. Merge partials in a fixed order (e.g. chunk order from
    /// [`fgcs_par::par_map`]) for bit-identical results across worker
    /// counts.
    ///
    /// # Panics
    /// Panics if the two accumulators describe different trace shapes.
    pub fn merge(&mut self, o: &StreamingAnalysis) {
        assert_eq!(
            (self.days, self.span_secs, self.start_weekday),
            (o.days, o.span_secs, o.start_weekday),
            "StreamingAnalysis::merge: trace shape mismatch"
        );
        self.machines += o.machines;
        self.sums.total += o.sums.total;
        self.sums.cpu += o.sums.cpu;
        self.sums.mem += o.sums.mem;
        self.sums.urr += o.sums.urr;
        self.sums.urr_reboots += o.sums.urr_reboots;
        self.total_r.merge(&o.total_r);
        self.cpu_r.merge(&o.cpu_r);
        self.mem_r.merge(&o.mem_r);
        self.urr_r.merge(&o.urr_r);
        self.cpu_pct_r.merge(&o.cpu_pct_r);
        self.mem_pct_r.merge(&o.mem_pct_r);
        self.urr_pct_r.merge(&o.urr_pct_r);
        self.weekday_hours.merge(&o.weekday_hours);
        self.weekend_hours.merge(&o.weekend_hours);
        self.weekday_sum += o.weekday_sum;
        self.weekend_sum += o.weekend_sum;
        for (mine, theirs) in self.day_hour.iter_mut().zip(&o.day_hour) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
    }

    /// Machines folded in so far.
    pub fn machines(&self) -> u64 {
        self.machines
    }

    /// Trace length in days.
    pub fn days(&self) -> usize {
        self.days
    }

    /// The Table 2 summary (exactly equal to the exact path's numbers —
    /// integer folds commute).
    pub fn table2_summary(&self) -> Table2Summary {
        Table2Summary {
            machines: self.machines,
            occurrences: self.sums.total as u64,
            total: self.total_r.get(),
            cpu: self.cpu_r.get(),
            mem: self.mem_r.get(),
            urr: self.urr_r.get(),
            cpu_pct: self.cpu_pct_r.get(),
            mem_pct: self.mem_pct_r.get(),
            urr_pct: self.urr_pct_r.get(),
            urr_reboot_fraction: if self.sums.urr == 0 {
                0.0
            } else {
                self.sums.urr_reboots as f64 / self.sums.urr as f64
            },
        }
    }

    /// Interval-length sketch for a day type (Figure 6).
    pub fn interval_sketch(&self, dt: DayType) -> &RankSketch {
        match dt {
            DayType::Weekday => &self.weekday_hours,
            DayType::Weekend => &self.weekend_hours,
        }
    }

    /// Mean interval length in hours for a day type (exact running sum,
    /// not a sketch estimate).
    pub fn mean_hours(&self, dt: DayType) -> f64 {
        let (sum, n) = match dt {
            DayType::Weekday => (self.weekday_sum, self.weekday_hours.count()),
            DayType::Weekend => (self.weekend_sum, self.weekend_hours.count()),
        };
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// The day×hour occurrence matrix (bit-identical to
    /// [`analysis::day_hour_counts`]).
    pub fn day_hour_counts(&self) -> &[[u32; 24]] {
        &self.day_hour
    }

    /// Figure 7 bands, bit-identical to [`analysis::hourly`].
    pub fn hourly(&self) -> HourlyAnalysis {
        analysis::hourly_from_matrix(&self.day_hour, self.start_weekday)
    }

    /// §5.3 regularity metrics, bit-identical to
    /// [`analysis::regularity`].
    pub fn regularity(&self) -> Regularity {
        analysis::regularity_from_matrix(&self.day_hour, self.start_weekday)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_testbed, TestbedConfig};
    use fgcs_stats::Ecdf;

    fn lab_trace() -> Trace {
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.machines = 4;
        cfg.lab.days = 14;
        run_testbed(&cfg)
    }

    #[test]
    fn table2_summary_matches_exact_path() {
        let trace = lab_trace();
        let exact = Table2Summary::from(&analysis::table2(&trace));
        let streaming = StreamingAnalysis::from_trace(&trace, 1024).table2_summary();
        assert_eq!(streaming, exact);
    }

    #[test]
    fn fig7_matrix_is_bit_identical() {
        let trace = lab_trace();
        let acc = StreamingAnalysis::from_trace(&trace, 256);
        assert_eq!(
            acc.day_hour_counts(),
            &analysis::day_hour_counts(&trace)[..]
        );
        let exact = analysis::regularity(&trace);
        assert_eq!(acc.regularity(), exact);
        let bands = acc.hourly();
        let exact_bands = analysis::hourly(&trace);
        assert_eq!(bands.weekday.bands(), exact_bands.weekday.bands());
        assert_eq!(bands.weekend.bands(), exact_bands.weekend.bands());
    }

    #[test]
    fn fig6_sketch_within_bound_of_exact_ecdf() {
        let trace = lab_trace();
        let acc = StreamingAnalysis::from_trace(&trace, 512);
        let exact = analysis::intervals(&trace);
        for (dt, ecdf) in [
            (DayType::Weekday, &exact.weekday),
            (DayType::Weekend, &exact.weekend),
        ] {
            let sk = acc.interval_sketch(dt);
            assert_eq!(sk.count(), ecdf.len() as u64, "{dt:?} interval count");
            let bound = sk.quantile_rank_error_bound() as i64;
            for i in 1..20 {
                let q = i as f64 / 20.0;
                let v = sk.quantile(q).expect("non-empty, no NaN");
                let rank = ecdf.samples().iter().filter(|x| **x <= v).count() as i64;
                let target = (q * ecdf.len() as f64).ceil() as i64;
                assert!(
                    (rank - target).abs() <= bound,
                    "{dt:?} q={q}: rank {rank} target {target} bound {bound}"
                );
            }
            // Exact means agree to float tolerance (different sum order).
            let m = acc.mean_hours(dt);
            assert!((m - ecdf.mean()).abs() < 1e-9 * (1.0 + m.abs()));
        }
    }

    #[test]
    fn merge_of_machine_partitions_equals_single_pass() {
        let trace = lab_trace();
        let whole = StreamingAnalysis::from_trace(&trace, 256);
        // Split machines 0..4 into two partials and merge in order.
        let per = trace.per_machine();
        let k = 256;
        let mut a = StreamingAnalysis::new(trace.meta.days as usize, trace.meta.start_weekday, k);
        let mut b = StreamingAnalysis::new(trace.meta.days as usize, trace.meta.start_weekday, k);
        for m in 0..trace.meta.machines {
            let target = if m < 2 { &mut a } else { &mut b };
            match per.get(&m) {
                Some(recs) => target.push_machine_refs(recs),
                None => target.push_machine_refs(&[]),
            }
        }
        a.merge(&b);
        // Integer state and sketches are bit-identical; the running f64
        // interval-hour sums are grouped differently ((a)+(b) vs one
        // pass), so they agree only to float tolerance. Fleet-level
        // bit-reproducibility still holds because the chunking — and
        // therefore the grouping — is a config constant.
        assert_eq!(a.table2_summary(), whole.table2_summary());
        assert_eq!(a.day_hour_counts(), whole.day_hour_counts());
        for dt in [DayType::Weekday, DayType::Weekend] {
            assert_eq!(
                format!("{:?}", a.interval_sketch(dt)),
                format!("{:?}", whole.interval_sketch(dt))
            );
            let (x, y) = (a.mean_hours(dt), whole.mean_hours(dt));
            assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()), "{dt:?}: {x} vs {y}");
        }
    }

    #[test]
    fn empty_machines_widen_ranges_like_exact() {
        // A trace claiming 3 machines where only machine 1 has records.
        let mut trace = lab_trace();
        trace.meta.machines = 6; // 2 extra silent machines
        let exact = Table2Summary::from(&analysis::table2(&trace));
        let streaming = StreamingAnalysis::from_trace(&trace, 64).table2_summary();
        assert_eq!(streaming, exact);
        assert_eq!(streaming.total.min, 0, "silent machines pull min to 0");
    }

    #[test]
    fn ecdf_cdf_and_sketch_cdf_agree_within_bound() {
        let trace = lab_trace();
        let acc = StreamingAnalysis::from_trace(&trace, 512);
        let exact = analysis::intervals(&trace);
        let sk = acc.interval_sketch(DayType::Weekday);
        let eps = sk.rank_error_bound() as f64 / sk.count() as f64;
        for x in [0.5, 1.0, 2.0, 4.0, 8.0, 24.0] {
            let e = Ecdf::eval(&exact.weekday, x);
            let s = sk.cdf(x).unwrap();
            assert!((e - s).abs() <= eps + 1e-12, "x={x}: exact {e} sketch {s}");
        }
    }
}
