//! The on-disk trace format.
//!
//! One record per unavailability occurrence, exactly the paper's schema:
//! "the start and end time of each occurrence of resource unavailability,
//! the corresponding failure state (S3, S4, or S5), and the available CPU
//! and memory for guest jobs" — plus the machine id and the raw
//! failure-condition end used for the reboot/failure split of URR.
//!
//! Two serializations are provided: JSON-lines (meta header line followed
//! by one record per line) and CSV (header row; `-` for open ends).

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use fgcs_core::model::{AvailState, FailureCause, Thresholds};

use crate::json::{self, ObjWriter, Value};
use crate::quality::TraceQualityReport;

/// Trace-wide metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Generator seed.
    pub seed: u64,
    /// Number of machines.
    pub machines: u32,
    /// Trace length in days.
    pub days: u32,
    /// Monitor sampling period, seconds.
    pub sample_period: u64,
    /// Weekday the trace started on (0 = Monday).
    pub start_weekday: u8,
    /// Total span, seconds.
    pub span_secs: u64,
    /// Thresholds the detector used.
    pub thresholds: Thresholds,
}

/// One unavailability occurrence on one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Machine id, `0..machines`.
    pub machine: u32,
    /// Failure cause (maps 1:1 to states S3/S4/S5).
    pub cause: FailureCause,
    /// Start of the occurrence, seconds since trace start.
    pub start: u64,
    /// When the machine became harvestable again; `None` if the trace
    /// ended first.
    pub end: Option<u64>,
    /// When the failure condition cleared (excludes the harvest delay).
    pub raw_end: Option<u64>,
    /// Mean CPU fraction that was available to guests over the preceding
    /// availability interval.
    pub avail_cpu: f64,
    /// Mean memory available to guests over the preceding availability
    /// interval, MB.
    pub avail_mem_mb: u32,
}

impl TraceRecord {
    /// The failure state of this record.
    pub fn state(&self) -> AvailState {
        self.cause.state()
    }

    /// Occurrence duration (to harvestability), if closed.
    pub fn duration(&self) -> Option<u64> {
        self.end.map(|e| e - self.start)
    }

    /// Duration of the raw failure condition, if closed.
    pub fn raw_duration(&self) -> Option<u64> {
        self.raw_end.map(|e| e.saturating_sub(self.start))
    }
}

/// Errors reading a serialized trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content, with a description.
    Parse(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse(m) => write!(f, "trace parse error: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A complete testbed trace: metadata plus all machines' occurrences.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Trace-wide metadata.
    pub meta: TraceMeta,
    /// All occurrences, sorted by `(machine, start)`.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Groups records per machine (keys `0..machines`, possibly sparse).
    pub fn per_machine(&self) -> BTreeMap<u32, Vec<&TraceRecord>> {
        let mut map: BTreeMap<u32, Vec<&TraceRecord>> = BTreeMap::new();
        for r in &self.records {
            map.entry(r.machine).or_default().push(r);
        }
        map
    }

    /// Total machine-days covered ("roughly 1800 machine-days" in the
    /// paper).
    pub fn machine_days(&self) -> u64 {
        self.meta.machines as u64 * self.meta.days as u64
    }

    /// Writes the trace as JSON lines: one meta line, then one record
    /// per line.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        writeln!(w, "{}", meta_to_json(&self.meta))?;
        for r in &self.records {
            writeln!(w, "{}", record_to_json(r))?;
        }
        Ok(())
    }

    /// Reads a trace written by [`Trace::write_jsonl`].
    pub fn read_jsonl<R: BufRead>(r: R) -> Result<Trace, TraceError> {
        let mut lines = r.lines();
        let meta_line = lines
            .next()
            .ok_or_else(|| TraceError::Parse("empty trace file".into()))??;
        let meta = meta_from_json(&meta_line)
            .map_err(|e| TraceError::Parse(format!("bad meta line: {e}")))?;
        let mut records = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let rec = record_from_json(&line)
                .map_err(|e| TraceError::Parse(format!("record {}: {e}", i + 1)))?;
            records.push(rec);
        }
        Ok(Trace { meta, records })
    }

    /// Reads a trace written by [`Trace::write_jsonl`], skipping and
    /// reporting damaged record lines instead of failing on the first.
    ///
    /// The meta line must still parse — without it nothing downstream
    /// can interpret the records, so a damaged header is a hard
    /// [`TraceError::Parse`]. Every damaged *record* line is skipped and
    /// counted in the returned [`TraceQualityReport`]
    /// (`corrupt_lines` / `corrupt_line_numbers`, 1-based file line
    /// numbers); surviving records are counted per machine via
    /// `samples_used`-independent `parsed_records`. On an undamaged file
    /// this returns exactly what [`Trace::read_jsonl`] returns, plus a
    /// clean report.
    pub fn read_jsonl_recovering<R: BufRead>(
        r: R,
    ) -> Result<(Trace, TraceQualityReport), TraceError> {
        let mut lines = r.lines();
        let meta_line = lines
            .next()
            .ok_or_else(|| TraceError::Parse("empty trace file".into()))??;
        let meta = meta_from_json(&meta_line)
            .map_err(|e| TraceError::Parse(format!("bad meta line: {e}")))?;
        let mut records = Vec::new();
        let mut quality = TraceQualityReport::new();
        for (i, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match record_from_json(&line) {
                Ok(rec) => {
                    quality.machine_mut(rec.machine);
                    records.push(rec);
                }
                Err(_) => {
                    quality.corrupt_lines += 1;
                    quality.corrupt_line_numbers.push(i + 2); // 1-based, after meta
                }
            }
        }
        quality.parsed_records = records.len() as u64;
        Ok((Trace { meta, records }, quality))
    }

    /// Writes the records as CSV (metadata is *not* included; pair with
    /// JSONL for full fidelity).
    pub fn write_csv<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        writeln!(w, "machine,state,start,end,raw_end,avail_cpu,avail_mem_mb")?;
        for r in &self.records {
            writeln!(
                w,
                "{},{},{},{},{},{},{}",
                r.machine,
                r.state(),
                r.start,
                r.end.map(|e| e.to_string()).unwrap_or_else(|| "-".into()),
                r.raw_end
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "-".into()),
                r.avail_cpu,
                r.avail_mem_mb,
            )?;
        }
        Ok(())
    }

    /// Reads records from [`Trace::write_csv`] output, attaching the
    /// given metadata.
    pub fn read_csv<R: BufRead>(r: R, meta: TraceMeta) -> Result<Trace, TraceError> {
        let mut records = Vec::new();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            if i == 0 || line.trim().is_empty() {
                continue; // header
            }
            let rec = record_from_csv_line(&line)
                .map_err(|e| TraceError::Parse(format!("line {}: {e}", i + 1)))?;
            records.push(rec);
        }
        Ok(Trace { meta, records })
    }

    /// Reads records from [`Trace::write_csv`] output like
    /// [`Trace::read_csv`], but skips and reports damaged lines instead
    /// of failing on the first (see [`Trace::read_jsonl_recovering`]).
    pub fn read_csv_recovering<R: BufRead>(
        r: R,
        meta: TraceMeta,
    ) -> Result<(Trace, TraceQualityReport), TraceError> {
        let mut records = Vec::new();
        let mut quality = TraceQualityReport::new();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            if i == 0 || line.trim().is_empty() {
                continue; // header
            }
            match record_from_csv_line(&line) {
                Ok(rec) => {
                    quality.machine_mut(rec.machine);
                    records.push(rec);
                }
                Err(_) => {
                    quality.corrupt_lines += 1;
                    quality.corrupt_line_numbers.push(i + 1);
                }
            }
        }
        quality.parsed_records = records.len() as u64;
        Ok((Trace { meta, records }, quality))
    }
}

fn record_from_csv_line(line: &str) -> Result<TraceRecord, String> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 7 {
        return Err(format!("expected 7 fields, got {}", fields.len()));
    }
    let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
        s.parse::<u64>().map_err(|e| format!("{what}: {e}"))
    };
    let parse_opt = |s: &str, what: &str| -> Result<Option<u64>, String> {
        if s == "-" {
            Ok(None)
        } else {
            parse_u64(s, what).map(Some)
        }
    };
    let cause = match fields[1] {
        "S3" => FailureCause::CpuContention,
        "S4" => FailureCause::MemoryThrashing,
        "S5" => FailureCause::Revocation,
        other => return Err(format!("unknown state {other:?}")),
    };
    Ok(TraceRecord {
        machine: parse_u64(fields[0], "machine")? as u32,
        cause,
        start: parse_u64(fields[2], "start")?,
        end: parse_opt(fields[3], "end")?,
        raw_end: parse_opt(fields[4], "raw_end")?,
        avail_cpu: parse_avail_cpu(
            fields[5]
                .parse::<f64>()
                .map_err(|e| format!("avail_cpu: {e}"))?,
        )?,
        avail_mem_mb: parse_u64(fields[6], "avail_mem_mb")? as u32,
    })
}

/// The loader-boundary NaN/∞ gate: `"NaN".parse::<f64>()` succeeds in
/// Rust (and `1e999` overflows to `inf`), so a corrupted or recovered
/// trace can carry non-finite availability means that later panic the
/// `fgcs-stats` sorts. Every record parser rejects them here so nothing
/// downstream ever sees one.
fn parse_avail_cpu(v: f64) -> Result<f64, String> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(format!("avail_cpu is not finite: {v}"))
    }
}

// JSON conversion helpers. The field order and encodings (unit enum
// variants as strings, `Option` as value-or-null) match what the
// previous serde-derived implementation wrote, so traces produced by
// older builds still parse and vice versa.

fn meta_to_json(m: &TraceMeta) -> String {
    let mut th = ObjWriter::new();
    th.f64("th1", m.thresholds.th1).f64("th2", m.thresholds.th2);
    let mut w = ObjWriter::new();
    w.u64("seed", m.seed)
        .u64("machines", m.machines as u64)
        .u64("days", m.days as u64)
        .u64("sample_period", m.sample_period)
        .u64("start_weekday", m.start_weekday as u64)
        .u64("span_secs", m.span_secs)
        .obj("thresholds", th);
    w.finish()
}

/// Serializes one record as a single JSON object line — the same
/// encoding [`Trace::write_jsonl`] uses per record. Public so other
/// on-disk formats (the `fgcs-service` snapshot files) reuse the exact
/// byte encoding instead of inventing a second one; `{}`-formatted f64s
/// round-trip bit-exactly (see `json::ObjWriter`).
pub fn record_to_json(r: &TraceRecord) -> String {
    let mut w = ObjWriter::new();
    w.u64("machine", r.machine as u64)
        .str("cause", cause_name(r.cause))
        .u64("start", r.start)
        .opt_u64("end", r.end)
        .opt_u64("raw_end", r.raw_end)
        .f64("avail_cpu", r.avail_cpu)
        .u64("avail_mem_mb", r.avail_mem_mb as u64);
    w.finish()
}

fn cause_name(c: FailureCause) -> &'static str {
    match c {
        FailureCause::CpuContention => "CpuContention",
        FailureCause::MemoryThrashing => "MemoryThrashing",
        FailureCause::Revocation => "Revocation",
    }
}

fn get<'a>(obj: &'a BTreeMap<String, Value>, key: &str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn get_u64(obj: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    get(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an unsigned integer"))
}

fn get_f64(obj: &BTreeMap<String, Value>, key: &str) -> Result<f64, String> {
    get(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn get_opt_u64(obj: &BTreeMap<String, Value>, key: &str) -> Result<Option<u64>, String> {
    match get(obj, key)? {
        Value::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} is not an unsigned integer or null")),
    }
}

fn meta_from_json(line: &str) -> Result<TraceMeta, String> {
    let v = json::parse(line)?;
    let o = v.as_obj().ok_or("meta line is not an object")?;
    let th = get(o, "thresholds")?
        .as_obj()
        .ok_or("thresholds is not an object")?;
    Ok(TraceMeta {
        seed: get_u64(o, "seed")?,
        machines: get_u64(o, "machines")? as u32,
        days: get_u64(o, "days")? as u32,
        sample_period: get_u64(o, "sample_period")?,
        start_weekday: get_u64(o, "start_weekday")? as u8,
        span_secs: get_u64(o, "span_secs")?,
        thresholds: Thresholds::new(get_f64(th, "th1")?, get_f64(th, "th2")?),
    })
}

/// Parses one record from a JSON object line (inverse of
/// [`record_to_json`]). Unknown fields are ignored, so wrappers may add
/// their own discriminators around the record encoding. Non-finite
/// `avail_cpu` values are rejected here, at the loader boundary.
pub fn record_from_json(line: &str) -> Result<TraceRecord, String> {
    let v = json::parse(line)?;
    let o = v.as_obj().ok_or("record line is not an object")?;
    record_from_obj(o)
}

/// Parses one record from an already-parsed JSON object (see
/// [`record_from_json`]).
pub fn record_from_obj(o: &BTreeMap<String, Value>) -> Result<TraceRecord, String> {
    let cause = match get(o, "cause")?.as_str().ok_or("cause is not a string")? {
        "CpuContention" => FailureCause::CpuContention,
        "MemoryThrashing" => FailureCause::MemoryThrashing,
        "Revocation" => FailureCause::Revocation,
        other => return Err(format!("unknown cause {other:?}")),
    };
    Ok(TraceRecord {
        machine: get_u64(o, "machine")? as u32,
        cause,
        start: get_u64(o, "start")?,
        end: get_opt_u64(o, "end")?,
        raw_end: get_opt_u64(o, "raw_end")?,
        avail_cpu: parse_avail_cpu(get_f64(o, "avail_cpu")?)?,
        avail_mem_mb: get_u64(o, "avail_mem_mb")? as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let meta = TraceMeta {
            seed: 7,
            machines: 2,
            days: 3,
            sample_period: 15,
            start_weekday: 0,
            span_secs: 3 * 86_400,
            thresholds: Thresholds::LINUX_TESTBED,
        };
        let records = vec![
            TraceRecord {
                machine: 0,
                cause: FailureCause::CpuContention,
                start: 1000,
                end: Some(2000),
                raw_end: Some(1700),
                avail_cpu: 0.83,
                avail_mem_mb: 812,
            },
            TraceRecord {
                machine: 0,
                cause: FailureCause::Revocation,
                start: 50_000,
                end: Some(50_400),
                raw_end: Some(50_040),
                avail_cpu: 0.95,
                avail_mem_mb: 900,
            },
            TraceRecord {
                machine: 1,
                cause: FailureCause::MemoryThrashing,
                start: 9_000,
                end: None,
                raw_end: None,
                avail_cpu: 0.75,
                avail_mem_mb: 400,
            },
        ];
        Trace { meta, records }
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let back = Trace::read_csv(&buf[..], t.meta.clone()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_has_expected_shape() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("machine,state,"));
        assert!(lines[1].starts_with("0,S3,1000,2000,1700,"));
        assert!(lines[3].contains(",S4,9000,-,-,"));
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(Trace::read_jsonl(&b"not json\n"[..]).is_err());
        assert!(Trace::read_jsonl(&b""[..]).is_err());
    }

    #[test]
    fn csv_rejects_bad_state() {
        let meta = sample_trace().meta;
        let bad = "machine,state,start,end,raw_end,avail_cpu,avail_mem_mb\n0,S9,1,2,2,0.5,100\n";
        let err = Trace::read_csv(bad.as_bytes(), meta).unwrap_err();
        assert!(matches!(err, TraceError::Parse(_)));
    }

    #[test]
    fn csv_rejects_wrong_arity() {
        let meta = sample_trace().meta;
        let bad = "header\n0,S3,1\n";
        assert!(Trace::read_csv(bad.as_bytes(), meta).is_err());
    }

    #[test]
    fn recovering_jsonl_equals_strict_on_clean_input() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let (back, q) = Trace::read_jsonl_recovering(&buf[..]).unwrap();
        assert_eq!(back, t);
        assert!(q.is_clean());
        assert_eq!(q.parsed_records, t.records.len() as u64);
    }

    #[test]
    fn recovering_jsonl_skips_and_reports_damage() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let mut lines: Vec<String> = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        lines[2] = "####corrupt####".into(); // second record
        let text = lines.join("\n");
        let (back, q) = Trace::read_jsonl_recovering(text.as_bytes()).unwrap();
        assert_eq!(back.records.len(), t.records.len() - 1);
        assert_eq!(back.records[0], t.records[0], "surviving records intact");
        assert_eq!(back.records[1], t.records[2]);
        assert_eq!(q.corrupt_lines, 1);
        assert_eq!(q.corrupt_line_numbers, vec![3]);
        assert_eq!(q.parsed_records, 2);
    }

    #[test]
    fn recovering_jsonl_still_requires_the_meta_line() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let damaged = format!("not json\n{}", text.lines().nth(1).unwrap());
        assert!(Trace::read_jsonl_recovering(damaged.as_bytes()).is_err());
    }

    #[test]
    fn recovering_csv_skips_and_reports_damage() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let mut lines: Vec<String> = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        lines[1] = lines[1][..5].to_string(); // truncated mid-record
        lines.push("0,S9,1,2,2,0.5,100".into()); // bad state
        let text = lines.join("\n");
        let (back, q) = Trace::read_csv_recovering(text.as_bytes(), t.meta.clone()).unwrap();
        assert_eq!(back.records, &t.records[1..]);
        assert_eq!(q.corrupt_lines, 2);
        assert_eq!(q.corrupt_line_numbers, vec![2, 5]);
    }

    #[test]
    fn recovering_csv_equals_strict_on_clean_input() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let (back, q) = Trace::read_csv_recovering(&buf[..], t.meta.clone()).unwrap();
        assert_eq!(back, t);
        assert!(q.is_clean());
    }

    #[test]
    fn non_finite_avail_cpu_is_rejected_at_the_loader() {
        // CSV: Rust's f64 parser happily accepts "NaN" and "inf".
        let meta = sample_trace().meta;
        for bad in ["NaN", "inf", "-inf"] {
            let text = format!(
                "machine,state,start,end,raw_end,avail_cpu,avail_mem_mb\n0,S3,1,2,2,{bad},100\n"
            );
            let err = Trace::read_csv(text.as_bytes(), meta.clone()).unwrap_err();
            assert!(
                matches!(&err, TraceError::Parse(m) if m.contains("not finite")),
                "{bad}: {err}"
            );
            // The recovering loader counts it as a corrupt line instead
            // of letting the NaN through to the stats sorts.
            let (t, q) = Trace::read_csv_recovering(text.as_bytes(), meta.clone()).unwrap();
            assert!(t.records.is_empty());
            assert_eq!(q.corrupt_lines, 1, "{bad}");
        }
        // JSONL: a JSON number literal can still overflow to infinity.
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let meta_line = String::from_utf8(buf)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string();
        let text = format!(
            "{meta_line}\n{{\"machine\":0,\"cause\":\"CpuContention\",\"start\":1,\
             \"end\":2,\"raw_end\":2,\"avail_cpu\":1e999,\"avail_mem_mb\":100}}\n"
        );
        assert!(Trace::read_jsonl(text.as_bytes()).is_err());
        let (back, q) = Trace::read_jsonl_recovering(text.as_bytes()).unwrap();
        assert!(back.records.is_empty());
        assert_eq!(q.corrupt_lines, 1);
    }

    #[test]
    fn recovering_jsonl_survives_truncation_mid_record() {
        // The crash-during-checkpoint shape: the file ends mid-way
        // through a record's bytes. The loader must keep every complete
        // record and report exactly one corrupt line — never a
        // half-applied record.
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        // Cut the last record line roughly in half (drop the trailing
        // newline plus half the record).
        let full = String::from_utf8(buf).unwrap();
        let last_len = full.trim_end().lines().last().unwrap().len();
        let cut = full.trim_end().len() - last_len / 2;
        let truncated = &full[..cut];
        let (back, q) = Trace::read_jsonl_recovering(truncated.as_bytes()).unwrap();
        assert_eq!(back.records, &t.records[..t.records.len() - 1]);
        assert_eq!(q.corrupt_lines, 1);
        assert_eq!(q.parsed_records, (t.records.len() - 1) as u64);
    }

    #[test]
    fn record_json_helpers_round_trip_and_ignore_wrappers() {
        // The service snapshot format wraps record lines with a "kind"
        // discriminator; the parser must ignore unknown fields.
        let r = sample_trace().records[0];
        let plain = record_to_json(&r);
        assert_eq!(record_from_json(&plain).unwrap(), r);
        let wrapped = format!("{{\"kind\":\"record\",{}", &plain[1..]);
        assert_eq!(record_from_json(&wrapped).unwrap(), r);
    }

    #[test]
    fn per_machine_grouping() {
        let t = sample_trace();
        let by = t.per_machine();
        assert_eq!(by.len(), 2);
        assert_eq!(by[&0].len(), 2);
        assert_eq!(by[&1].len(), 1);
        assert_eq!(t.machine_days(), 6);
    }

    #[test]
    fn record_accessors() {
        let t = sample_trace();
        assert_eq!(t.records[0].state(), AvailState::S3);
        assert_eq!(t.records[0].duration(), Some(1000));
        assert_eq!(t.records[0].raw_duration(), Some(700));
        assert_eq!(t.records[2].duration(), None);
    }
}
