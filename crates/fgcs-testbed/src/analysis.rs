//! Trace analysis — the §5 results.
//!
//! * [`table2`] — unavailability by cause, per-machine ranges (Table 2)
//!   including the reboot/failure split of URR;
//! * [`intervals`] — availability-interval lengths, weekday vs weekend
//!   (Figure 6);
//! * [`hourly`] — unavailability occurrences per hour of day with mean
//!   and range bands (Figure 7);
//! * [`regularity`] — the across-day deviation analysis behind the
//!   paper's predictability claim (§5.3).

use fgcs_core::model::FailureCause;
use fgcs_stats::corr::mean_pairwise_correlation;
use fgcs_stats::ecdf::Ecdf;
use fgcs_stats::grouped::GroupedStats;

use crate::calendar::{day_index, day_type, DayType, SECS_PER_DAY, SECS_PER_HOUR};
use crate::quality::TraceQualityReport;
use crate::trace::{Trace, TraceRecord};

/// URR occurrences with a raw outage shorter than this are machine
/// reboots ("URR with intervals shorter than one minute", §5.1).
pub const REBOOT_CUTOFF_SECS: u64 = 60;

/// Per-machine failure counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CauseCounts {
    /// All occurrences.
    pub total: usize,
    /// S3, CPU contention.
    pub cpu: usize,
    /// S4, memory thrashing.
    pub mem: usize,
    /// S5, revocation.
    pub urr: usize,
    /// S5 occurrences classified as reboots (raw outage < 1 minute).
    pub urr_reboots: usize,
}

/// Min–max range over machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Smallest per-machine value.
    pub min: usize,
    /// Largest per-machine value.
    pub max: usize,
}

impl Range {
    fn over<I: Iterator<Item = usize>>(values: I) -> Range {
        let mut min = usize::MAX;
        let mut max = 0;
        let mut any = false;
        for v in values {
            min = min.min(v);
            max = max.max(v);
            any = true;
        }
        if !any {
            Range { min: 0, max: 0 }
        } else {
            Range { min, max }
        }
    }
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}", self.min, self.max)
    }
}

/// The Table 2 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// Per-machine counts (index = machine id).
    pub per_machine: Vec<CauseCounts>,
    /// Range of totals across machines.
    pub total: Range,
    /// Range of S3 counts.
    pub cpu: Range,
    /// Range of S4 counts.
    pub mem: Range,
    /// Range of S5 counts.
    pub urr: Range,
    /// Fraction of all URR occurrences that are reboots (paper: ~90%).
    pub urr_reboot_fraction: f64,
}

impl Table2 {
    /// Percentage ranges relative to each machine's own total, as the
    /// paper reports them.
    pub fn percentage_ranges(&self) -> (Range, Range, Range) {
        let pct = |get: fn(&CauseCounts) -> usize| {
            Range::over(
                self.per_machine
                    .iter()
                    .filter(|c| c.total > 0)
                    .map(|c| (get(c) * 100 + c.total / 2) / c.total),
            )
        };
        (pct(|c| c.cpu), pct(|c| c.mem), pct(|c| c.urr))
    }
}

impl CauseCounts {
    /// Counts one occurrence record, including the reboot/failure split
    /// of URR — the single per-record rule both the exact [`table2`] and
    /// the streaming path ([`crate::streaming`]) apply.
    pub fn push_record(&mut self, r: &TraceRecord) {
        self.total += 1;
        match r.cause {
            FailureCause::CpuContention => self.cpu += 1,
            FailureCause::MemoryThrashing => self.mem += 1,
            FailureCause::Revocation => {
                self.urr += 1;
                let reboot = r
                    .raw_duration()
                    .map(|d| d < REBOOT_CUTOFF_SECS)
                    .unwrap_or(false);
                if reboot {
                    self.urr_reboots += 1;
                }
            }
        }
    }
}

/// Computes the Table 2 statistics from a trace.
pub fn table2(trace: &Trace) -> Table2 {
    let mut per_machine = vec![CauseCounts::default(); trace.meta.machines as usize];
    for r in &trace.records {
        per_machine[r.machine as usize].push_record(r);
    }
    let urr_total: usize = per_machine.iter().map(|c| c.urr).sum();
    let reboots: usize = per_machine.iter().map(|c| c.urr_reboots).sum();
    Table2 {
        total: Range::over(per_machine.iter().map(|c| c.total)),
        cpu: Range::over(per_machine.iter().map(|c| c.cpu)),
        mem: Range::over(per_machine.iter().map(|c| c.mem)),
        urr: Range::over(per_machine.iter().map(|c| c.urr)),
        urr_reboot_fraction: if urr_total == 0 {
            0.0
        } else {
            reboots as f64 / urr_total as f64
        },
        per_machine,
    }
}

/// Availability intervals of one machine as `(start, end)` pairs — the
/// complement of its occurrences over the trace span.
pub fn machine_intervals(records: &[&TraceRecord], span_secs: u64) -> Vec<(u64, u64)> {
    let mut intervals = Vec::new();
    let mut cursor = 0u64;
    for r in records {
        if r.start > cursor {
            intervals.push((cursor, r.start));
        }
        cursor = cursor.max(r.end.unwrap_or(span_secs).min(span_secs));
        if cursor >= span_secs {
            break;
        }
    }
    if cursor < span_secs {
        intervals.push((cursor, span_secs));
    }
    intervals
}

/// The Figure 6 reproduction: interval-length distributions by day type.
#[derive(Debug, Clone)]
pub struct IntervalAnalysis {
    /// Interval lengths (hours) for intervals starting on weekdays.
    pub weekday: Ecdf,
    /// Interval lengths (hours) for intervals starting on weekends.
    pub weekend: Ecdf,
}

impl IntervalAnalysis {
    /// Mean interval length in hours for a day type.
    pub fn mean_hours(&self, dt: DayType) -> f64 {
        match dt {
            DayType::Weekday => self.weekday.mean(),
            DayType::Weekend => self.weekend.mean(),
        }
    }

    /// Fraction of intervals with length in `(lo_hours, hi_hours]`.
    pub fn fraction_between(&self, dt: DayType, lo_hours: f64, hi_hours: f64) -> f64 {
        match dt {
            DayType::Weekday => self.weekday.fraction_between(lo_hours, hi_hours),
            DayType::Weekend => self.weekend.fraction_between(lo_hours, hi_hours),
        }
    }
}

/// Computes the availability-interval distributions. Intervals are
/// classified by the day type of their start, as the paper plots
/// weekday and weekend curves.
pub fn intervals(trace: &Trace) -> IntervalAnalysis {
    let mut weekday = Vec::new();
    let mut weekend = Vec::new();
    for (_, recs) in trace.per_machine() {
        for (s, e) in machine_intervals(&recs, trace.meta.span_secs) {
            let hours = (e - s) as f64 / SECS_PER_HOUR as f64;
            match day_type(day_index(s), trace.meta.start_weekday) {
                DayType::Weekday => weekday.push(hours),
                DayType::Weekend => weekend.push(hours),
            }
        }
    }
    IntervalAnalysis {
        weekday: Ecdf::new(&weekday),
        weekend: Ecdf::new(&weekend),
    }
}

/// [`intervals`] over a trace with known quality problems: availability
/// intervals overlapping a censored span are *excluded* from the
/// distributions, not truncated at the censoring boundary. A censored
/// span means "we do not know what the machine did here" — the paper's
/// Figure 6 plots observed interval *lengths*, and an interval whose
/// true extent is unknown has no defensible length to contribute;
/// truncating it at the gap would systematically bias the CDFs short.
pub fn intervals_censored(trace: &Trace, quality: &TraceQualityReport) -> IntervalAnalysis {
    let mut weekday = Vec::new();
    let mut weekend = Vec::new();
    for (machine, recs) in trace.per_machine() {
        let mq = quality.machines.get(&machine);
        for (s, e) in machine_intervals(&recs, trace.meta.span_secs) {
            if mq.is_some_and(|m| m.overlaps_censored(s, e)) {
                continue;
            }
            let hours = (e - s) as f64 / SECS_PER_HOUR as f64;
            match day_type(day_index(s), trace.meta.start_weekday) {
                DayType::Weekday => weekday.push(hours),
                DayType::Weekend => weekend.push(hours),
            }
        }
    }
    IntervalAnalysis {
        weekday: Ecdf::new(&weekday),
        weekend: Ecdf::new(&weekend),
    }
}

/// The Figure 7 reproduction: per-hour occurrence counts, aggregated
/// over the testbed, with mean and min–max range across days.
#[derive(Debug, Clone)]
pub struct HourlyAnalysis {
    /// Hour-of-day statistics over weekdays (key = hour `0..24`,
    /// value = testbed-wide occurrence count for that hour of each day).
    pub weekday: GroupedStats<u8>,
    /// Same over weekend days.
    pub weekend: GroupedStats<u8>,
}

/// Per-day, per-hour occurrence matrix (day-major), used by both the
/// hourly bands and the regularity analysis. An occurrence spanning
/// multiple hours is counted once in every hour interval it overlaps, as
/// the paper specifies.
pub fn day_hour_counts(trace: &Trace) -> Vec<[u32; 24]> {
    let mut counts = vec![[0u32; 24]; trace.meta.days as usize];
    for r in &trace.records {
        count_record_hours(&mut counts, r, trace.meta.span_secs);
    }
    counts
}

/// Adds one record's hour-bin hits to a day×hour matrix — shared by
/// [`day_hour_counts`] and the streaming path so the Figure 7 matrix is
/// bit-identical either way.
pub fn count_record_hours(counts: &mut [[u32; 24]], r: &TraceRecord, span_secs: u64) {
    let days = counts.len();
    let end = r.end.unwrap_or(span_secs).min(span_secs);
    let mut hour_start = r.start - (r.start % SECS_PER_HOUR);
    while hour_start < end {
        let day = (hour_start / SECS_PER_DAY) as usize;
        if day >= days {
            break;
        }
        let hour = ((hour_start % SECS_PER_DAY) / SECS_PER_HOUR) as usize;
        counts[day][hour] += 1;
        hour_start += SECS_PER_HOUR;
    }
}

/// Computes the Figure 7 hourly bands.
pub fn hourly(trace: &Trace) -> HourlyAnalysis {
    hourly_from_matrix(&day_hour_counts(trace), trace.meta.start_weekday)
}

/// [`hourly`] from a precomputed day×hour matrix — the entry point the
/// bounded-memory streaming path ([`crate::streaming`]) shares with the
/// exact one, so both produce bit-identical Figure 7 bands.
pub fn hourly_from_matrix(matrix: &[[u32; 24]], start_weekday: u8) -> HourlyAnalysis {
    let mut weekday = GroupedStats::new();
    let mut weekend = GroupedStats::new();
    for (day, hours) in matrix.iter().enumerate() {
        let target = match day_type(day as u64, start_weekday) {
            DayType::Weekday => &mut weekday,
            DayType::Weekend => &mut weekend,
        };
        for (h, &c) in hours.iter().enumerate() {
            target.push(h as u8, c as f64);
        }
    }
    HourlyAnalysis { weekday, weekend }
}

/// The §5.3 regularity analysis: how similar the hourly failure pattern
/// of one day is to other days of the same type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regularity {
    /// Mean pairwise Pearson correlation between weekday hour-vectors.
    pub weekday_correlation: f64,
    /// Mean pairwise Pearson correlation between weekend hour-vectors.
    pub weekend_correlation: f64,
    /// Mean coefficient of variation of the per-hour weekday counts
    /// (small = "deviations ... are small").
    pub weekday_mean_cv: f64,
    /// Same for weekends.
    pub weekend_mean_cv: f64,
}

/// Computes the regularity metrics.
pub fn regularity(trace: &Trace) -> Regularity {
    regularity_from_matrix(&day_hour_counts(trace), trace.meta.start_weekday)
}

/// [`regularity`] from a precomputed day×hour matrix (shared with the
/// streaming path, same bit-identity guarantee as
/// [`hourly_from_matrix`]).
pub fn regularity_from_matrix(matrix: &[[u32; 24]], start_weekday: u8) -> Regularity {
    let mut weekday_vecs: Vec<Vec<f64>> = Vec::new();
    let mut weekend_vecs: Vec<Vec<f64>> = Vec::new();
    for (day, hours) in matrix.iter().enumerate() {
        let v: Vec<f64> = hours.iter().map(|&c| c as f64).collect();
        match day_type(day as u64, start_weekday) {
            DayType::Weekday => weekday_vecs.push(v),
            DayType::Weekend => weekend_vecs.push(v),
        }
    }
    let bands = hourly_from_matrix(matrix, start_weekday);
    let mean_cv = |g: &GroupedStats<u8>| {
        let cvs: Vec<f64> = g
            .iter()
            .filter(|(_, s)| s.mean() > 0.0)
            .map(|(_, s)| s.cv())
            .collect();
        if cvs.is_empty() {
            0.0
        } else {
            cvs.iter().sum::<f64>() / cvs.len() as f64
        }
    };
    Regularity {
        weekday_correlation: mean_pairwise_correlation(&weekday_vecs).unwrap_or(0.0),
        weekend_correlation: mean_pairwise_correlation(&weekend_vecs).unwrap_or(0.0),
        weekday_mean_cv: mean_cv(&bands.weekday),
        weekend_mean_cv: mean_cv(&bands.weekend),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceMeta, TraceRecord};
    use fgcs_core::model::Thresholds;

    /// End-to-end NaN regression: a recovered trace whose damaged line
    /// carried a non-finite availability mean must flow through every §5
    /// analysis without panicking — the loader rejects the line, the
    /// stats sorts are total_cmp either way.
    #[test]
    fn recovered_trace_with_non_finite_means_analyzes_cleanly() {
        use crate::runner::{run_testbed, TestbedConfig};
        let trace = run_testbed(&TestbedConfig::tiny());
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // A corrupt record whose JSON number overflows to infinity.
        text.push_str(
            "{\"machine\":0,\"cause\":\"CpuContention\",\"start\":10,\
             \"end\":20,\"raw_end\":20,\"avail_cpu\":1e999,\"avail_mem_mb\":1}\n",
        );
        let (back, q) = Trace::read_jsonl_recovering(text.as_bytes()).unwrap();
        assert_eq!(q.corrupt_lines, 1, "the non-finite record is rejected");
        assert_eq!(back.records.len(), trace.records.len());
        assert!(back.records.iter().all(|r| r.avail_cpu.is_finite()));

        let t2 = table2(&back);
        assert!(t2.urr_reboot_fraction.is_finite());
        let iv = intervals(&back);
        assert!(iv.mean_hours(DayType::Weekday).is_finite());
        let h = hourly(&back);
        assert!(h.weekday.bands().iter().all(|(_, _, m, _)| m.is_finite()));
        let r = regularity(&back);
        assert!(r.weekday_correlation.is_finite());
    }

    fn meta(machines: u32, days: u32) -> TraceMeta {
        TraceMeta {
            seed: 1,
            machines,
            days,
            sample_period: 15,
            start_weekday: 0,
            span_secs: days as u64 * SECS_PER_DAY,
            thresholds: Thresholds::LINUX_TESTBED,
        }
    }

    fn rec(machine: u32, cause: FailureCause, start: u64, end: u64, raw_end: u64) -> TraceRecord {
        TraceRecord {
            machine,
            cause,
            start,
            end: Some(end),
            raw_end: Some(raw_end),
            avail_cpu: 0.9,
            avail_mem_mb: 800,
        }
    }

    #[test]
    fn censored_intervals_are_excluded_not_truncated() {
        // One machine, one day. Occurrence at [3600, 7200) splits the day
        // into intervals [0, 3600) and [7200, 86400). Censoring a span
        // inside the second interval must drop that whole interval.
        let records = vec![rec(0, FailureCause::CpuContention, 3_600, 7_200, 7_000)];
        let trace = Trace {
            meta: meta(1, 1),
            records,
        };
        let clean = intervals(&trace);
        assert_eq!(clean.weekday.len(), 2);

        let mut q = TraceQualityReport::new();
        q.machine_mut(0).censored_spans = vec![(10_000, 12_000)];
        let censored = intervals_censored(&trace, &q);
        assert_eq!(censored.weekday.len(), 1, "overlapping interval excluded");
        assert!(
            (censored.weekday.mean() - 1.0).abs() < 1e-9,
            "the 1 h interval survives"
        );

        // An empty quality report reproduces the uncensored analysis.
        let same = intervals_censored(&trace, &TraceQualityReport::new());
        assert_eq!(same.weekday.len(), clean.weekday.len());
        assert_eq!(same.weekend.len(), clean.weekend.len());
    }

    #[test]
    fn table2_counts_and_reboot_split() {
        let records = vec![
            rec(0, FailureCause::CpuContention, 100, 700, 400),
            rec(0, FailureCause::MemoryThrashing, 1_000, 1_500, 1_200),
            rec(0, FailureCause::Revocation, 2_000, 2_400, 2_030), // reboot (30 s)
            rec(1, FailureCause::Revocation, 3_000, 11_000, 10_000), // hw failure
            rec(1, FailureCause::CpuContention, 20_000, 20_600, 20_300),
        ];
        let t2 = table2(&Trace {
            meta: meta(2, 1),
            records,
        });
        assert_eq!(t2.per_machine[0].total, 3);
        assert_eq!(t2.per_machine[0].urr_reboots, 1);
        assert_eq!(t2.per_machine[1].urr_reboots, 0);
        assert_eq!(t2.total, Range { min: 2, max: 3 });
        assert_eq!(t2.cpu, Range { min: 1, max: 1 });
        assert!((t2.urr_reboot_fraction - 0.5).abs() < 1e-12);
        let (cpu_pct, mem_pct, urr_pct) = t2.percentage_ranges();
        assert_eq!(cpu_pct, Range { min: 33, max: 50 });
        assert_eq!(mem_pct, Range { min: 0, max: 33 });
        assert_eq!(urr_pct, Range { min: 33, max: 50 });
    }

    #[test]
    fn machine_intervals_complement() {
        let r1 = rec(0, FailureCause::CpuContention, 100, 200, 150);
        let r2 = rec(0, FailureCause::CpuContention, 500, 600, 550);
        let refs: Vec<&TraceRecord> = vec![&r1, &r2];
        let ivals = machine_intervals(&refs, 1_000);
        assert_eq!(ivals, vec![(0, 100), (200, 500), (600, 1_000)]);
    }

    #[test]
    fn intervals_split_by_day_type() {
        // One event on a weekday (day 0, Monday) and one on a weekend
        // (day 5, Saturday) for a 7-day, 1-machine trace.
        let records = vec![
            rec(
                0,
                FailureCause::CpuContention,
                10 * SECS_PER_HOUR,
                11 * SECS_PER_HOUR,
                10 * SECS_PER_HOUR + 600,
            ),
            rec(
                0,
                FailureCause::CpuContention,
                5 * SECS_PER_DAY + 10 * SECS_PER_HOUR,
                5 * SECS_PER_DAY + 12 * SECS_PER_HOUR,
                5 * SECS_PER_DAY + 11 * SECS_PER_HOUR,
            ),
        ];
        let a = intervals(&Trace {
            meta: meta(1, 7),
            records,
        });
        // Intervals: [0,10h) wd, [11h, day5+10h) wd, [day5+12h, day7) we.
        assert_eq!(a.weekday.len(), 2);
        assert_eq!(a.weekend.len(), 1);
        assert!((a.weekend.samples()[0] - 36.0).abs() < 1e-9);
    }

    #[test]
    fn day_hour_counts_spanning_event() {
        // Event from 01:30 to 03:10 covers hour bins 1, 2 and 3.
        let records = vec![rec(0, FailureCause::CpuContention, 5_400, 11_400, 11_000)];
        let m = day_hour_counts(&Trace {
            meta: meta(1, 1),
            records,
        });
        assert_eq!(m[0][1], 1);
        assert_eq!(m[0][2], 1);
        assert_eq!(m[0][3], 1);
        assert_eq!(m[0][0], 0);
        assert_eq!(m[0][4], 0);
    }

    #[test]
    fn hourly_aggregates_across_machines() {
        // Two machines failing in the same hour of the same weekday.
        let records = vec![
            rec(
                0,
                FailureCause::CpuContention,
                10 * SECS_PER_HOUR,
                10 * SECS_PER_HOUR + 100,
                10 * SECS_PER_HOUR + 50,
            ),
            rec(
                1,
                FailureCause::CpuContention,
                10 * SECS_PER_HOUR + 200,
                10 * SECS_PER_HOUR + 300,
                10 * SECS_PER_HOUR + 250,
            ),
        ];
        let h = hourly(&Trace {
            meta: meta(2, 1),
            records,
        });
        let stats = h.weekday.get(&10).expect("hour 10 present");
        assert_eq!(stats.mean(), 2.0);
        assert_eq!(h.weekday.get(&11), None.or(h.weekday.get(&11)));
    }

    #[test]
    fn regularity_of_identical_days_is_perfect() {
        // The same event pattern on two weekdays.
        let records = vec![
            rec(
                0,
                FailureCause::CpuContention,
                10 * SECS_PER_HOUR,
                10 * SECS_PER_HOUR + 600,
                10 * SECS_PER_HOUR + 300,
            ),
            rec(
                0,
                FailureCause::CpuContention,
                SECS_PER_DAY + 10 * SECS_PER_HOUR,
                SECS_PER_DAY + 10 * SECS_PER_HOUR + 600,
                SECS_PER_DAY + 10 * SECS_PER_HOUR + 300,
            ),
        ];
        let r = regularity(&Trace {
            meta: meta(1, 2),
            records,
        });
        assert!((r.weekday_correlation - 1.0).abs() < 1e-9);
        assert_eq!(r.weekday_mean_cv, 0.0);
    }

    #[test]
    fn open_event_counts_until_span_end() {
        let mut r = rec(0, FailureCause::Revocation, 23 * SECS_PER_HOUR, 0, 0);
        r.end = None;
        r.raw_end = None;
        let m = day_hour_counts(&Trace {
            meta: meta(1, 1),
            records: vec![r],
        });
        assert_eq!(m[0][23], 1);
    }
}
