//! The testbed tracer: lab generator → monitor observations → detector →
//! trace records, for every machine in parallel.
//!
//! This is the software that ran on the paper's 20 machines for three
//! months, condensed: each machine's resource monitor feeds the §4
//! detector, and every unavailability occurrence is recorded together
//! with the mean available CPU/memory of the preceding availability
//! interval.

use fgcs_core::detector::{Detector, DetectorConfig, EventEdge};
use fgcs_core::monitor::Observation;

use crate::lab::{LabConfig, MachinePlan};
use crate::trace::{Trace, TraceMeta, TraceRecord};

/// Testbed configuration: the lab model plus the detector parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TestbedConfig {
    /// Workload generator configuration.
    pub lab: LabConfig,
    /// Detector configuration (timestamps in seconds).
    pub detector: DetectorConfig,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig { lab: LabConfig::default(), detector: DetectorConfig::wallclock_default() }
    }
}

impl TestbedConfig {
    /// Small configuration for tests.
    pub fn tiny() -> Self {
        TestbedConfig { lab: LabConfig::tiny(), detector: DetectorConfig::wallclock_default() }
    }
}

/// Runs the whole testbed and collects the trace. Machines are traced in
/// parallel; the result is deterministic in the seed regardless of the
/// worker count.
pub fn run_testbed(cfg: &TestbedConfig) -> Trace {
    let ids: Vec<usize> = (0..cfg.lab.machines).collect();
    let per_machine = fgcs_par::par_map(&ids, |&id| trace_machine(cfg, id));
    let mut records = Vec::new();
    for recs in per_machine {
        records.extend(recs);
    }
    Trace {
        meta: TraceMeta {
            seed: cfg.lab.seed,
            machines: cfg.lab.machines as u32,
            days: cfg.lab.days as u32,
            sample_period: cfg.lab.sample_period,
            start_weekday: cfg.lab.start_weekday,
            span_secs: cfg.lab.span_secs(),
            thresholds: cfg.detector.thresholds,
        },
        records,
    }
}

/// Traces a single machine over the full span.
pub fn trace_machine(cfg: &TestbedConfig, machine_id: usize) -> Vec<TraceRecord> {
    let plan = MachinePlan::generate(&cfg.lab, machine_id);
    let mut detector = Detector::new(cfg.detector);
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut open: Option<usize> = None;

    // Running means of guest-available CPU and memory over the current
    // availability interval.
    let mut avail_cpu_sum = 0.0;
    let mut avail_mem_sum = 0.0;
    let mut avail_samples = 0u64;

    let free_for_guest = |resident_mb: u32| -> u32 {
        cfg.lab
            .phys_mem_mb
            .saturating_sub(cfg.lab.kernel_mem_mb)
            .saturating_sub(resident_mb)
    };

    for s in plan.samples() {
        let obs = if s.alive {
            Observation {
                host_load: s.host_load,
                free_mem_mb: free_for_guest(s.host_resident_mb),
                alive: true,
            }
        } else {
            Observation::dead()
        };

        if detector.is_available() && s.alive {
            avail_cpu_sum += 1.0 - s.host_load;
            avail_mem_sum += free_for_guest(s.host_resident_mb) as f64;
            avail_samples += 1;
        }

        let step = detector.observe(s.t, &obs);
        for edge in step.edges {
            match edge {
                EventEdge::Started { cause, at } => {
                    debug_assert!(open.is_none(), "nested occurrence");
                    let n = avail_samples.max(1) as f64;
                    records.push(TraceRecord {
                        machine: machine_id as u32,
                        cause,
                        start: at,
                        end: None,
                        raw_end: None,
                        avail_cpu: avail_cpu_sum / n,
                        avail_mem_mb: (avail_mem_sum / n) as u32,
                    });
                    open = Some(records.len() - 1);
                    avail_cpu_sum = 0.0;
                    avail_mem_sum = 0.0;
                    avail_samples = 0;
                }
                EventEdge::Ended { at, calm_from, .. } => {
                    let idx = open.take().expect("Ended without open record");
                    records[idx].end = Some(at);
                    records[idx].raw_end = Some(calm_from.max(records[idx].start));
                }
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_core::model::FailureCause;

    #[test]
    fn tiny_testbed_produces_events() {
        let trace = run_testbed(&TestbedConfig::tiny());
        assert!(!trace.records.is_empty());
        // updatedb alone guarantees roughly one S3 per machine-day.
        let cpu = trace
            .records
            .iter()
            .filter(|r| r.cause == FailureCause::CpuContention)
            .count();
        assert!(cpu as u32 >= trace.meta.machines * trace.meta.days / 2, "cpu events {cpu}");
    }

    #[test]
    fn records_are_well_formed() {
        let trace = run_testbed(&TestbedConfig::tiny());
        for r in &trace.records {
            assert!(r.start < trace.meta.span_secs);
            if let (Some(end), Some(raw)) = (r.end, r.raw_end) {
                assert!(r.start < end, "{r:?}");
                assert!(raw <= end, "{r:?}");
                assert!(raw >= r.start, "{r:?}");
            }
            assert!((0.0..=1.0).contains(&r.avail_cpu), "{r:?}");
            assert!(r.machine < trace.meta.machines);
        }
    }

    #[test]
    fn per_machine_records_are_ordered_and_disjoint() {
        let trace = run_testbed(&TestbedConfig::tiny());
        for (_, recs) in trace.per_machine() {
            for w in recs.windows(2) {
                let end = w[0].end.expect("only the last record may be open");
                assert!(end <= w[1].start, "overlap: {:?} {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_testbed(&TestbedConfig::tiny());
        let b = run_testbed(&TestbedConfig::tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn updatedb_causes_4am_events_on_every_machine() {
        let cfg = TestbedConfig::tiny();
        let trace = run_testbed(&cfg);
        for day in 0..cfg.lab.days as u64 {
            for m in 0..cfg.lab.machines as u32 {
                let lo = day * 86_400 + 4 * 3_600;
                let hi = day * 86_400 + 5 * 3_600;
                let hit = trace
                    .records
                    .iter()
                    .any(|r| r.machine == m && r.start >= lo && r.start < hi);
                assert!(hit, "machine {m} day {day} missing a 4-5 AM event");
            }
        }
    }

    #[test]
    fn revocations_appear_with_raised_failure_rate() {
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.days = 10;
        cfg.lab.hw_failures_per_day = 0.3;
        let trace = run_testbed(&cfg);
        let urr = trace
            .records
            .iter()
            .filter(|r| r.cause == FailureCause::Revocation)
            .count();
        assert!(urr > 0, "expected URR events");
    }
}
