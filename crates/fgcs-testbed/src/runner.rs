//! The testbed tracer: lab generator → monitor observations → detector →
//! trace records, for every machine in parallel.
//!
//! This is the software that ran on the paper's 20 machines for three
//! months, condensed: each machine's resource monitor feeds the §4
//! detector, and every unavailability occurrence is recorded together
//! with the mean available CPU/memory of the preceding availability
//! interval.

use fgcs_core::detector::{
    Detector, DetectorConfig, DetectorConfigError, DetectorSnapshot, EventEdge, Step,
};
use fgcs_core::model::AvailState;
use fgcs_core::monitor::Observation;
use fgcs_faults::{CrashPlan, FaultConfig, FaultStream};

use crate::lab::{LabConfig, MachinePlan};
use crate::quality::{MachineQuality, TraceQualityReport};
use crate::trace::{Trace, TraceMeta, TraceRecord};

/// Testbed configuration: the lab model plus the detector parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TestbedConfig {
    /// Workload generator configuration.
    pub lab: LabConfig,
    /// Detector configuration (timestamps in seconds).
    pub detector: DetectorConfig,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            lab: LabConfig::default(),
            detector: DetectorConfig::wallclock_default(),
        }
    }
}

impl TestbedConfig {
    /// Small configuration for tests.
    pub fn tiny() -> Self {
        TestbedConfig {
            lab: LabConfig::tiny(),
            detector: DetectorConfig::wallclock_default(),
        }
    }
}

/// Detector + occurrence bookkeeping for one machine: feeds observations
/// to the §4 detector and turns its event edges into [`TraceRecord`]s,
/// tracking the running mean of guest-available CPU/memory over the
/// preceding availability interval.
///
/// Both testbed tracers *and* the networked ingest path
/// (`fgcs-service`) are built on this type, so a sample stream replayed
/// over TCP produces bit-identical records to an in-process run by
/// construction: same accumulation order, same f64 sums.
#[derive(Debug, Clone)]
pub struct OccurrenceRecorder {
    machine: u32,
    detector: Detector,
    records: Vec<TraceRecord>,
    open: Option<usize>,
    avail_cpu_sum: f64,
    avail_mem_sum: f64,
    avail_samples: u64,
}

impl OccurrenceRecorder {
    /// A recorder for `machine` with a fresh detector.
    pub fn new(machine: u32, config: DetectorConfig) -> Self {
        OccurrenceRecorder {
            machine,
            detector: Detector::new(config),
            records: Vec::new(),
            open: None,
            avail_cpu_sum: 0.0,
            avail_mem_sum: 0.0,
            avail_samples: 0,
        }
    }

    /// Current detector state.
    pub fn state(&self) -> AvailState {
        self.detector.state()
    }

    /// Whether the machine is currently in an availability state.
    pub fn is_available(&self) -> bool {
        self.detector.is_available()
    }

    /// Whether a load spike is pending (above Th2 but within tolerance).
    pub fn spike_active(&self) -> bool {
        self.detector.spike_active()
    }

    /// Records produced so far. The last one may still be open
    /// (`end == None`).
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the recorder, returning its records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Feeds one observation: accumulates availability-interval means,
    /// steps the detector, and converts event edges into records.
    /// Timestamps must be non-decreasing (the caller discards
    /// out-of-order samples).
    pub fn observe(&mut self, t: u64, obs: &Observation) -> Step {
        // Means cover samples where the machine was observed available
        // *before* this sample was applied: the sample that triggers an
        // occurrence belongs to the occurrence, not to the interval.
        if self.detector.is_available() && obs.alive {
            self.avail_cpu_sum += 1.0 - obs.host_load;
            self.avail_mem_sum += obs.free_mem_mb as f64;
            self.avail_samples += 1;
        }

        let step = self.detector.observe(t, obs);
        if step.gap.is_some() {
            // What accumulated before the silence does not describe the
            // interval that resumes after it.
            self.avail_cpu_sum = 0.0;
            self.avail_mem_sum = 0.0;
            self.avail_samples = 0;
        }
        for edge in &step.edges {
            match *edge {
                EventEdge::Started { cause, at } => {
                    debug_assert!(self.open.is_none(), "nested occurrence");
                    let n = self.avail_samples.max(1) as f64;
                    self.records.push(TraceRecord {
                        machine: self.machine,
                        cause,
                        start: at,
                        end: None,
                        raw_end: None,
                        avail_cpu: self.avail_cpu_sum / n,
                        avail_mem_mb: (self.avail_mem_sum / n) as u32,
                    });
                    self.open = Some(self.records.len() - 1);
                    self.avail_cpu_sum = 0.0;
                    self.avail_mem_sum = 0.0;
                    self.avail_samples = 0;
                }
                EventEdge::Ended { at, calm_from, .. } => {
                    let idx = self.open.take().expect("Ended without open record");
                    let start = self.records[idx].start;
                    // A gap-close can end an occurrence at its own start
                    // sample; clamp instead of trusting the edge times.
                    let end = at.max(start);
                    self.records[idx].end = Some(end);
                    self.records[idx].raw_end = Some(calm_from.clamp(start, end));
                }
            }
        }
        step
    }

    /// Fast path for the batched tracer: credits one available sample to
    /// the running interval means without stepping the detector. Only
    /// valid when the detector is calmly available (`is_available()`,
    /// no pending spike) and the observation could not change that —
    /// the float operations mirror [`Self::observe`] exactly.
    pub(crate) fn accumulate_available_sample(&mut self, host_load: f64, free_mem_mb: u32) {
        self.avail_cpu_sum += 1.0 - host_load;
        self.avail_mem_sum += free_mem_mb as f64;
        self.avail_samples += 1;
    }

    /// Captures everything needed to resume this recorder after a
    /// process restart, *except* the records themselves (callers persist
    /// those separately — typically via the trace serializers — and hand
    /// them back to [`OccurrenceRecorder::restore`]).
    pub fn snapshot(&self) -> RecorderSnapshot {
        RecorderSnapshot {
            machine: self.machine,
            detector: self.detector.snapshot(),
            open: self.open.map(|i| i as u64),
            avail_cpu_sum: self.avail_cpu_sum,
            avail_mem_sum: self.avail_mem_sum,
            avail_samples: self.avail_samples,
        }
    }

    /// Rebuilds a recorder from a [`RecorderSnapshot`] and the records
    /// that were persisted alongside it. The snapshot is validated
    /// against the records before anything is applied: an `open` index
    /// out of bounds, or pointing at an already-closed record, rejects
    /// the whole snapshot (the crash-safe loader then falls back to an
    /// older one rather than resuming from inconsistent state).
    pub fn restore(
        cfg: DetectorConfig,
        snap: &RecorderSnapshot,
        records: Vec<TraceRecord>,
    ) -> Result<OccurrenceRecorder, RecorderRestoreError> {
        let open = match snap.open {
            None => None,
            Some(i) => {
                let idx = i as usize;
                match records.get(idx) {
                    None => return Err(RecorderRestoreError::OpenOutOfBounds(i)),
                    Some(r) if r.end.is_some() => {
                        return Err(RecorderRestoreError::OpenRecordClosed(i))
                    }
                    Some(_) => Some(idx),
                }
            }
        };
        let detector =
            Detector::restore(cfg, snap.detector).map_err(RecorderRestoreError::InvalidConfig)?;
        Ok(OccurrenceRecorder {
            machine: snap.machine,
            detector,
            records,
            open,
            avail_cpu_sum: snap.avail_cpu_sum,
            avail_mem_sum: snap.avail_mem_sum,
            avail_samples: snap.avail_samples,
        })
    }
}

/// Serializable view of an [`OccurrenceRecorder`]'s resumable state
/// (see [`OccurrenceRecorder::snapshot`]). Records are not included;
/// they travel through the trace serializers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecorderSnapshot {
    /// The machine this recorder traces.
    pub machine: u32,
    /// Detector state at snapshot time.
    pub detector: DetectorSnapshot,
    /// Index of the still-open record (`end == None`), if any.
    pub open: Option<u64>,
    /// Running sum of `1 - host_load` over the current availability
    /// interval.
    pub avail_cpu_sum: f64,
    /// Running sum of free guest memory (MB) over the interval.
    pub avail_mem_sum: f64,
    /// Samples accumulated into the sums.
    pub avail_samples: u64,
}

/// Why [`OccurrenceRecorder::restore`] rejected a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecorderRestoreError {
    /// `open` pointed past the end of the persisted records.
    OpenOutOfBounds(u64),
    /// `open` pointed at a record that already has an end time.
    OpenRecordClosed(u64),
    /// The detector configuration failed validation.
    InvalidConfig(DetectorConfigError),
}

impl std::fmt::Display for RecorderRestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecorderRestoreError::OpenOutOfBounds(i) => {
                write!(f, "open record index {i} out of bounds")
            }
            RecorderRestoreError::OpenRecordClosed(i) => {
                write!(f, "open record index {i} points at a closed record")
            }
            RecorderRestoreError::InvalidConfig(e) => write!(f, "invalid detector config: {e}"),
        }
    }
}

impl std::error::Error for RecorderRestoreError {}

/// Runs the whole testbed and collects the trace. Machines are traced in
/// parallel; the result is deterministic in the seed regardless of the
/// worker count.
pub fn run_testbed(cfg: &TestbedConfig) -> Trace {
    let ids: Vec<usize> = (0..cfg.lab.machines).collect();
    let per_machine = fgcs_par::par_map(&ids, |&id| trace_machine(cfg, id));
    let mut records = Vec::new();
    for recs in per_machine {
        records.extend(recs);
    }
    Trace {
        meta: TraceMeta {
            seed: cfg.lab.seed,
            machines: cfg.lab.machines as u32,
            days: cfg.lab.days as u32,
            sample_period: cfg.lab.sample_period,
            start_weekday: cfg.lab.start_weekday,
            span_secs: cfg.lab.span_secs(),
            thresholds: cfg.detector.thresholds,
        },
        records,
    }
}

/// Traces a single machine over the full span.
pub fn trace_machine(cfg: &TestbedConfig, machine_id: usize) -> Vec<TraceRecord> {
    let plan = MachinePlan::generate(&cfg.lab, machine_id);
    let mut recorder = OccurrenceRecorder::new(machine_id as u32, cfg.detector);
    for s in plan.samples() {
        let obs = if s.alive {
            Observation {
                host_load: s.host_load,
                free_mem_mb: cfg.lab.free_for_guest_mb(s.host_resident_mb),
                alive: true,
            }
        } else {
            Observation::dead()
        };
        recorder.observe(s.t, &obs);
    }
    recorder.into_records()
}

/// Traces a single machine like [`trace_machine`] but in constant-state
/// spans instead of sample-by-sample, producing **bit-identical
/// records** (asserted by tests across all archetypes):
///
/// * downtime spans feed the detector one dead observation (at the
///   first monitor tick inside the span) instead of thousands —
///   consecutive dead samples are idempotent for the detector;
/// * idle spans (no active contributions, background noise safely below
///   `Th2`, memory unconstrained) step the detector only until it is
///   calmly available, then credit the remaining samples straight to
///   the interval means. The per-sample noise draw is still performed —
///   the RNG stream position and float-add order are what make the two
///   paths bit-identical.
///
/// Falls back to [`trace_machine`] when a `max_silence` gap policy is
/// configured (the gap check inspects every sample's timestamp).
pub fn trace_machine_batched(cfg: &TestbedConfig, machine_id: usize) -> Vec<TraceRecord> {
    if cfg.detector.max_silence.is_some() {
        return trace_machine(cfg, machine_id);
    }
    let plan = MachinePlan::generate(&cfg.lab, machine_id);
    let lab = &cfg.lab;
    let p = lab.sample_period;
    let mut recorder = OccurrenceRecorder::new(machine_id as u32, cfg.detector);
    let mut noise = fgcs_stats::Rng::new(plan.noise_seed());
    // The idle fast path requires that an idle sample can never push a
    // calm, available detector out of availability: noise below Th2
    // (no spike, no S3) and free memory at base residency above the
    // guest working set (no S4).
    let idle_free = lab.free_for_guest_mb(lab.base_resident_mb);
    let idle_calm = lab.idle_load_max < cfg.detector.thresholds.th2
        && idle_free >= cfg.detector.guest_working_set_mb;

    for span in plan.spans() {
        // First monitor tick inside the span; spans shorter than the
        // sampling period can fall between ticks and are never observed
        // (exactly as in the sample-by-sample path).
        let first = (span.start + p - 1) / p * p;
        if first >= span.end {
            continue;
        }
        if span.dead {
            recorder.observe(first, &Observation::dead());
            continue;
        }
        let free = lab.free_for_guest_mb(span.mem_mb);
        let mut t = first;
        if span.loads.is_empty() && idle_calm {
            while t < span.end && !(recorder.is_available() && !recorder.spike_active()) {
                let load = noise.range_f64(0.0, lab.idle_load_max);
                recorder.observe(
                    t,
                    &Observation {
                        host_load: load.min(1.0),
                        free_mem_mb: free,
                        alive: true,
                    },
                );
                t += p;
            }
            while t < span.end {
                let load = noise.range_f64(0.0, lab.idle_load_max);
                recorder.accumulate_available_sample(load.min(1.0), free);
                t += p;
            }
        } else {
            while t < span.end {
                let mut load = noise.range_f64(0.0, lab.idle_load_max);
                for &l in &span.loads {
                    load += l;
                }
                recorder.observe(
                    t,
                    &Observation {
                        host_load: load.min(1.0),
                        free_mem_mb: free,
                        alive: true,
                    },
                );
                t += p;
            }
        }
    }
    recorder.into_records()
}

/// How the testbed supervisor handles faulty per-machine tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// How many tracer crashes are retried before the supervisor gives
    /// up on a machine (its remaining span is then censored, the rest of
    /// the testbed keeps running).
    pub max_retries: u32,
    /// First retry backoff, seconds; doubles per consecutive crash.
    pub backoff_base_secs: u64,
    /// Backoff ceiling, seconds.
    pub backoff_cap_secs: u64,
    /// A machine that stays up this long after a crash earns its retry
    /// budget back (the attempt counter resets). Without this, any
    /// machine whose *lifetime* crash count exceeds `max_retries` is
    /// eventually abandoned, no matter how spread out the crashes —
    /// give-up should mean "crash looping", not "crashed six times in
    /// three months".
    pub healthy_reset_secs: u64,
    /// Detector gap policy ([`DetectorConfig::max_silence`]) used for
    /// faulty runs: streams silent beyond this are censored rather than
    /// silently extended. Must comfortably exceed the sample period so a
    /// clean stream never triggers it.
    pub max_silence_secs: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 5,
            backoff_base_secs: 60,
            backoff_cap_secs: 960,
            healthy_reset_secs: 86_400,
            max_silence_secs: 120,
        }
    }
}

/// Capped exponential backoff after the `attempt`-th consecutive crash
/// (1-based): `base * 2^(attempt-1)`, capped. Shared by the testbed
/// supervisor and the service client's reconnect loop; the arithmetic
/// itself lives in [`fgcs_core::backoff`].
pub fn backoff_delay(sup: &SupervisorConfig, attempt: u32) -> u64 {
    fgcs_core::backoff::backoff_units(sup.backoff_base_secs, sup.backoff_cap_secs, attempt)
}

/// Runs the testbed with fault injection under supervision. With
/// `faults` all-zero this produces a trace identical to
/// [`run_testbed`] and a clean quality report; with nonzero rates it
/// never aborts — lost data is counted and censored per machine in the
/// returned [`TraceQualityReport`].
pub fn run_testbed_faulty(
    cfg: &TestbedConfig,
    faults: &FaultConfig,
    sup: &SupervisorConfig,
) -> (Trace, TraceQualityReport) {
    let ids: Vec<usize> = (0..cfg.lab.machines).collect();
    let per_machine = fgcs_par::par_map(&ids, |&id| trace_machine_supervised(cfg, faults, sup, id));
    let mut records = Vec::new();
    let mut quality = TraceQualityReport::new();
    for (recs, mq) in per_machine {
        quality.parsed_records += recs.len() as u64;
        records.extend(recs);
        quality.machines.insert(mq.machine, mq);
    }
    let trace = Trace {
        meta: TraceMeta {
            seed: cfg.lab.seed,
            machines: cfg.lab.machines as u32,
            days: cfg.lab.days as u32,
            sample_period: cfg.lab.sample_period,
            start_weekday: cfg.lab.start_weekday,
            span_secs: cfg.lab.span_secs(),
            thresholds: cfg.detector.thresholds,
        },
        records,
    };
    (trace, quality)
}

/// Traces one machine through the fault injector, supervised: tracer
/// crashes are retried with capped exponential backoff, out-of-order
/// samples are discarded (and counted), and silence gaps are censored by
/// the detector's gap policy instead of stretching whatever state was
/// current.
pub fn trace_machine_supervised(
    cfg: &TestbedConfig,
    faults: &FaultConfig,
    sup: &SupervisorConfig,
    machine_id: usize,
) -> (Vec<TraceRecord>, MachineQuality) {
    let span = cfg.lab.span_secs();
    let plan = MachinePlan::generate(&cfg.lab, machine_id);
    let mut det_cfg = cfg.detector;
    det_cfg.max_silence = Some(sup.max_silence_secs);
    let mut quality = MachineQuality {
        machine: machine_id as u32,
        ..Default::default()
    };
    let crash_plan = CrashPlan::generate(faults, machine_id as u64, span);
    let mut crashes = crash_plan.times.iter().copied().peekable();
    let mut stream = FaultStream::new(plan.samples(), faults, machine_id as u64);

    let mut recorder = OccurrenceRecorder::new(machine_id as u32, det_cfg);
    let mut outage_until: u64 = 0;
    let mut attempts: u32 = 0;
    let mut last_crash_t: Option<u64> = None;
    let mut last_t: Option<u64> = None;
    let mut abandoned_at: Option<u64> = None;

    'samples: for s in stream.by_ref() {
        // Supervision: handle tracer crashes scheduled before this sample.
        while let Some(&crash_t) = crashes.peek() {
            if crash_t > s.t {
                break;
            }
            crashes.next();
            quality.crashes += 1;
            if last_crash_t
                .is_some_and(|prev| crash_t.saturating_sub(prev) > sup.healthy_reset_secs)
            {
                attempts = 0;
            }
            last_crash_t = Some(crash_t);
            attempts += 1;
            if attempts > sup.max_retries {
                // Retries exhausted: this machine's tail is censored,
                // the testbed itself keeps going.
                quality.gave_up = true;
                abandoned_at = Some(crash_t);
                break 'samples;
            }
            let backoff = backoff_delay(sup, attempts);
            outage_until = outage_until.max(crash_t.saturating_add(backoff));
        }
        if s.t < outage_until {
            quality.lost_in_crash += 1;
            continue;
        }
        // The detector requires non-decreasing timestamps; late (or
        // clock-rewound) deliveries are discarded, not reordered.
        if last_t.is_some_and(|lt| s.t < lt) {
            quality.out_of_order += 1;
            continue;
        }
        last_t = Some(s.t);
        quality.samples_used += 1;

        let obs = if s.alive {
            Observation {
                host_load: s.host_load,
                free_mem_mb: cfg.lab.free_for_guest_mb(s.host_resident_mb),
                alive: true,
            }
        } else {
            Observation::dead()
        };

        let step = recorder.observe(s.t, &obs);
        if let Some(gap) = step.gap {
            quality.gaps += 1;
            quality.censored_spans.push(gap);
        }
    }

    if let Some(from) = abandoned_at {
        // Nothing past the fatal crash was observed.
        quality.censored_spans.push((from.min(span), span));
    }

    let stats = stream.stats();
    quality.dropped = stats.dropped;
    quality.duplicated = stats.duplicated;
    quality.delayed = stats.delayed;
    quality.restarts = stats.restarts;
    quality.lost_in_restart = stats.lost_in_restart;
    quality.clock_jumps = stats.clock_jumps;
    (recorder.into_records(), quality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_core::model::FailureCause;

    #[test]
    fn tiny_testbed_produces_events() {
        let trace = run_testbed(&TestbedConfig::tiny());
        assert!(!trace.records.is_empty());
        // updatedb alone guarantees roughly one S3 per machine-day.
        let cpu = trace
            .records
            .iter()
            .filter(|r| r.cause == FailureCause::CpuContention)
            .count();
        assert!(
            cpu as u32 >= trace.meta.machines * trace.meta.days / 2,
            "cpu events {cpu}"
        );
    }

    #[test]
    fn records_are_well_formed() {
        let trace = run_testbed(&TestbedConfig::tiny());
        for r in &trace.records {
            assert!(r.start < trace.meta.span_secs);
            if let (Some(end), Some(raw)) = (r.end, r.raw_end) {
                assert!(r.start < end, "{r:?}");
                assert!(raw <= end, "{r:?}");
                assert!(raw >= r.start, "{r:?}");
            }
            assert!((0.0..=1.0).contains(&r.avail_cpu), "{r:?}");
            assert!(r.machine < trace.meta.machines);
        }
    }

    #[test]
    fn per_machine_records_are_ordered_and_disjoint() {
        let trace = run_testbed(&TestbedConfig::tiny());
        for (_, recs) in trace.per_machine() {
            for w in recs.windows(2) {
                let end = w[0].end.expect("only the last record may be open");
                assert!(end <= w[1].start, "overlap: {:?} {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_testbed(&TestbedConfig::tiny());
        let b = run_testbed(&TestbedConfig::tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn updatedb_causes_4am_events_on_every_machine() {
        let cfg = TestbedConfig::tiny();
        let trace = run_testbed(&cfg);
        for day in 0..cfg.lab.days as u64 {
            for m in 0..cfg.lab.machines as u32 {
                let lo = day * 86_400 + 4 * 3_600;
                let hi = day * 86_400 + 5 * 3_600;
                let hit = trace
                    .records
                    .iter()
                    .any(|r| r.machine == m && r.start >= lo && r.start < hi);
                assert!(hit, "machine {m} day {day} missing a 4-5 AM event");
            }
        }
    }

    #[test]
    fn zero_faults_reproduce_the_clean_trace_exactly() {
        let cfg = TestbedConfig::tiny();
        let clean = run_testbed(&cfg);
        let (faulty, quality) =
            run_testbed_faulty(&cfg, &FaultConfig::off(1), &SupervisorConfig::default());
        assert_eq!(faulty, clean, "identity injection must be bit-identical");
        assert!(quality.is_clean(), "{quality}");
        assert_eq!(quality.parsed_records, clean.records.len() as u64);
    }

    #[test]
    fn noisy_faults_never_abort_and_are_accounted() {
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.days = 6;
        let faults = FaultConfig::noisy(42);
        let (trace, quality) = run_testbed_faulty(&cfg, &faults, &SupervisorConfig::default());
        assert!(!trace.records.is_empty());
        assert!(!quality.is_clean(), "noisy run must report faults");
        let t = quality.totals();
        assert!(
            t.dropped > 0,
            "drop rate 0.005 over 6 days must drop something"
        );
        // Records stay structurally sound even under faults.
        for (_, recs) in trace.per_machine() {
            for w in recs.windows(2) {
                let end = w[0].end.expect("only the last record may be open");
                assert!(end <= w[1].start, "overlap: {:?} {:?}", w[0], w[1]);
            }
            for r in recs {
                if let (Some(end), Some(raw)) = (r.end, r.raw_end) {
                    assert!(r.start <= end && raw <= end && raw >= r.start, "{r:?}");
                }
            }
        }
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.days = 5;
        let faults = FaultConfig::noisy(7);
        let sup = SupervisorConfig::default();
        let a = run_testbed_faulty(&cfg, &faults, &sup);
        let b = run_testbed_faulty(&cfg, &faults, &sup);
        assert_eq!(a, b);
    }

    #[test]
    fn supervisor_gives_up_and_censors_instead_of_aborting() {
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.days = 8;
        let mut faults = FaultConfig::off(3);
        faults.crash_rate_per_day = 6.0; // crashes far beyond the retry budget
        let sup = SupervisorConfig {
            max_retries: 2,
            ..SupervisorConfig::default()
        };
        let (trace, quality) = run_testbed_faulty(&cfg, &faults, &sup);
        let abandoned: Vec<_> = quality.machines.values().filter(|m| m.gave_up).collect();
        assert!(
            !abandoned.is_empty(),
            "this crash rate must exhaust 2 retries"
        );
        for m in abandoned {
            assert_eq!(m.crashes, sup.max_retries as u64 + 1);
            let (_, until) = *m.censored_spans.last().unwrap();
            assert_eq!(until, cfg.lab.span_secs(), "tail is censored to the end");
        }
        // The testbed as a whole still produced a trace.
        assert_eq!(trace.meta.machines as usize, cfg.lab.machines);
    }

    #[test]
    fn restart_outages_censor_via_the_gap_policy() {
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.days = 6;
        let mut faults = FaultConfig::off(11);
        faults.restart_rate = 0.001;
        faults.restart_outage_samples = 20; // 300 s > max_silence 120 s
        let (_, quality) = run_testbed_faulty(&cfg, &faults, &SupervisorConfig::default());
        let t = quality.totals();
        assert!(t.restarts > 0);
        assert!(t.gaps > 0, "a 300 s outage must be censored, got {quality}");
        assert_eq!(t.lost_in_restart, t.restarts * 20);
    }

    #[test]
    fn recorder_snapshot_restore_resumes_exactly() {
        // Stream a full lab machine, cut at several points (including
        // mid-occurrence), restore, and require the resumed recorder to
        // finish with bit-identical records — the invariant the service
        // snapshot subsystem is built on.
        let cfg = TestbedConfig::tiny();
        let plan = MachinePlan::generate(&cfg.lab, 0);
        let samples: Vec<_> = plan.samples().collect();
        let to_obs = |s: &crate::lab::LoadSample| {
            if s.alive {
                Observation {
                    host_load: s.host_load,
                    free_mem_mb: cfg.lab.free_for_guest_mb(s.host_resident_mb),
                    alive: true,
                }
            } else {
                Observation::dead()
            }
        };
        let mut full = OccurrenceRecorder::new(0, cfg.detector);
        for s in &samples {
            full.observe(s.t, &to_obs(s));
        }
        let expected = full.into_records();
        for cut in [1, samples.len() / 3, samples.len() / 2, samples.len() - 1] {
            let mut pre = OccurrenceRecorder::new(0, cfg.detector);
            for s in &samples[..cut] {
                pre.observe(s.t, &to_obs(s));
            }
            let snap = pre.snapshot();
            let mut resumed =
                OccurrenceRecorder::restore(cfg.detector, &snap, pre.records().to_vec())
                    .expect("valid snapshot");
            for s in &samples[cut..] {
                resumed.observe(s.t, &to_obs(s));
            }
            assert_eq!(resumed.into_records(), expected, "cut {cut}");
        }
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let cfg = TestbedConfig::tiny();
        let mut rec = OccurrenceRecorder::new(0, cfg.detector);
        // Drive into an occurrence so `open` is set.
        rec.observe(0, &Observation::dead());
        let snap = rec.snapshot();
        assert!(snap.open.is_some(), "death opens a record");
        // open index beyond the records we pass back.
        assert_eq!(
            OccurrenceRecorder::restore(cfg.detector, &snap, Vec::new()).err(),
            Some(RecorderRestoreError::OpenOutOfBounds(0))
        );
        // open pointing at an already-closed record.
        let mut closed = rec.records().to_vec();
        closed[0].end = Some(10);
        assert_eq!(
            OccurrenceRecorder::restore(cfg.detector, &snap, closed).err(),
            Some(RecorderRestoreError::OpenRecordClosed(0))
        );
        // Invalid detector config is rejected before anything is applied.
        let mut bad = cfg.detector;
        bad.spike_tolerance = 0;
        assert!(matches!(
            OccurrenceRecorder::restore(bad, &snap, rec.records().to_vec()),
            Err(RecorderRestoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn batched_tracer_is_bit_identical_to_exact_on_all_archetypes() {
        // The whole fleet subsystem rests on this: span-batched tracing
        // must reproduce the per-sample path record-for-record,
        // including the f64 interval means.
        for (name, lab) in crate::scenarios::all() {
            let cfg = TestbedConfig {
                lab: LabConfig {
                    machines: 3,
                    days: 7,
                    ..lab
                },
                detector: DetectorConfig::wallclock_default(),
            };
            for m in 0..cfg.lab.machines {
                assert_eq!(
                    trace_machine_batched(&cfg, m),
                    trace_machine(&cfg, m),
                    "{name} machine {m}"
                );
            }
        }
        for arch in crate::fleet::Archetype::ALL {
            let cfg = TestbedConfig {
                lab: LabConfig {
                    machines: 3,
                    days: 7,
                    ..arch.lab_config()
                },
                detector: DetectorConfig::wallclock_default(),
            };
            for m in 0..cfg.lab.machines {
                assert_eq!(
                    trace_machine_batched(&cfg, m),
                    trace_machine(&cfg, m),
                    "{arch:?} machine {m}"
                );
            }
        }
    }

    #[test]
    fn batched_tracer_falls_back_under_gap_policy() {
        let mut cfg = TestbedConfig::tiny();
        cfg.detector.max_silence = Some(120);
        assert_eq!(trace_machine_batched(&cfg, 0), trace_machine(&cfg, 0));
    }

    #[test]
    fn plan_spans_tile_the_trace_and_match_samples() {
        let mut lab = LabConfig::tiny();
        lab.hw_failures_per_day = 0.3; // force downtimes into the window
        let plan = MachinePlan::generate(&lab, 1);
        let spans: Vec<_> = plan.spans().collect();
        assert_eq!(spans.first().unwrap().start, 0);
        assert_eq!(spans.last().unwrap().end, lab.span_secs());
        for w in spans.windows(2) {
            assert_eq!(w[0].end, w[1].start, "spans must tile");
        }
        // Every sample's dead/alive status and memory agree with the
        // span that contains it.
        let mut it = spans.iter();
        let mut cur = it.next().unwrap();
        for s in plan.samples() {
            while s.t >= cur.end {
                cur = it.next().unwrap();
            }
            assert_eq!(s.alive, !cur.dead, "t={}", s.t);
            if s.alive {
                assert_eq!(s.host_resident_mb, cur.mem_mb, "t={}", s.t);
            }
        }
    }

    #[test]
    fn revocations_appear_with_raised_failure_rate() {
        let mut cfg = TestbedConfig::tiny();
        cfg.lab.days = 10;
        cfg.lab.hw_failures_per_day = 0.3;
        let trace = run_testbed(&cfg);
        let urr = trace
            .records
            .iter()
            .filter(|r| r.cause == FailureCause::Revocation)
            .count();
        assert!(urr > 0, "expected URR events");
    }
}
