//! Archetype-mixed fleet generation and streaming fleet analysis.
//!
//! The paper's testbed is 20 student-lab machines. A production FGCS
//! system federates *heterogeneous fleets* — labs next to server farms
//! next to laptops — at scales where per-interval vectors do not fit in
//! memory. This module generates such fleets deterministically and
//! folds every machine's occurrence stream straight into
//! [`StreamingAnalysis`] accumulators, per archetype and combined:
//! memory stays bounded by the sketch capacity and the trace length, not
//! the machine count.
//!
//! Determinism: machines are partitioned into fixed-size chunks
//! (a config constant, *not* derived from the worker count), chunks are
//! traced in parallel with [`fgcs_par::par_map`] (order-preserving), and
//! partial accumulators are merged in chunk order. The result is
//! bit-identical for any `FGCS_PAR_WORKERS`.

use fgcs_core::detector::DetectorConfig;
use fgcs_stats::rng::Rng;
use fgcs_stats::sketch;

use crate::lab::LabConfig;
use crate::runner::{trace_machine_batched, TestbedConfig};
use crate::scenarios;
use crate::streaming::StreamingAnalysis;

/// A machine-population archetype in a heterogeneous fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Archetype {
    /// The paper's shared student-lab machines (the baseline).
    StudentLab,
    /// Rack servers: no console users, near-continuous uptime, only
    /// cron jobs and rare hardware failures interrupt the guest.
    ServerFarm,
    /// Office desktops: 9-to-5 single owners who power the machine off
    /// overnight — long *scheduled* unavailability.
    OfficeDesktop,
    /// Laptops: evening-heavy usage and lid-close revocations — the
    /// machine vanishes mid-interval without a reboot signature.
    Laptop,
    /// Build-farm workers: no console users but bursty compile storms
    /// that saturate CPU and memory at unpredictable hours.
    BuildFarm,
}

impl Archetype {
    /// Every archetype, in the canonical fleet order.
    pub const ALL: [Archetype; 5] = [
        Archetype::StudentLab,
        Archetype::ServerFarm,
        Archetype::OfficeDesktop,
        Archetype::Laptop,
        Archetype::BuildFarm,
    ];

    /// Stable identifier used in CSVs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Archetype::StudentLab => "student-lab",
            Archetype::ServerFarm => "server-farm",
            Archetype::OfficeDesktop => "office-desktop",
            Archetype::Laptop => "laptop",
            Archetype::BuildFarm => "build-farm",
        }
    }

    /// The workload model for this archetype. Fleet-level fields
    /// (`seed`, `machines`, `days`) are overwritten by the runner.
    pub fn lab_config(self) -> LabConfig {
        match self {
            Archetype::StudentLab => scenarios::student_lab(),
            Archetype::ServerFarm => LabConfig {
                // No console users at all: occupancy zero draws no
                // session randomness, leaving cron and failures.
                weekday_occupancy: [0.0; 24],
                weekend_occupancy: [0.0; 24],
                reboots_per_session_hour: 0.0,
                // Background daemons churn a bit more than a lab box.
                idle_load_max: 0.06,
                blips_per_hour: 2.5,
                // Servers fail rarely but repairs take long.
                hw_failures_per_day: 0.002,
                hw_downtime_median_secs: 14_400.0,
                ..LabConfig::default()
            },
            Archetype::OfficeDesktop => LabConfig {
                // Shut down at 7 PM most days, back at 8 AM.
                nightly_off_hours: Some((19, 8)),
                nightly_off_prob: 0.85,
                ..scenarios::enterprise_desktop()
            },
            Archetype::Laptop => LabConfig {
                // The lid closes mid-session far more often than anyone
                // reboots: revocation dominates every other cause.
                lid_close_per_session_hour: 0.30,
                lid_close_secs: (300, 7_200),
                reboots_per_session_hour: 0.002,
                hw_failures_per_day: 0.001,
                ..scenarios::home_pc()
            },
            Archetype::BuildFarm => LabConfig {
                weekday_occupancy: [0.0; 24],
                weekend_occupancy: [0.0; 24],
                reboots_per_session_hour: 0.0,
                // CI storms arrive at all hours and pin the machine.
                storms_per_day: 6.0,
                storm_secs: (300, 2_700),
                storm_load: (0.75, 1.0),
                storm_mem_mb: (400, 900),
                idle_load_max: 0.05,
                hw_failures_per_day: 0.004,
                ..LabConfig::default()
            },
        }
    }
}

/// Fleet composition and scale.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Master seed; each archetype derives an independent stream.
    pub seed: u64,
    /// Total machine count across all archetypes.
    pub machines: usize,
    /// Trace length in days.
    pub days: usize,
    /// Relative archetype weights (need not sum to 1; zero-weight
    /// archetypes are excluded).
    pub mix: Vec<(Archetype, f64)>,
    /// Detector parameters, shared by the whole fleet.
    pub detector: DetectorConfig,
    /// Capacity of the interval sketches.
    pub sketch_k: usize,
    /// Machines per work chunk. A fixed constant — chunking must not
    /// depend on the worker count or determinism is lost.
    pub chunk_size: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 20060301,
            machines: 1_000,
            days: 92,
            mix: default_mix(),
            detector: DetectorConfig::wallclock_default(),
            sketch_k: sketch::DEFAULT_K,
            chunk_size: 64,
        }
    }
}

/// A plausible federated-fleet composition: labs and desktops dominate,
/// with server and build capacity and a laptop long tail.
pub fn default_mix() -> Vec<(Archetype, f64)> {
    vec![
        (Archetype::StudentLab, 0.25),
        (Archetype::ServerFarm, 0.20),
        (Archetype::OfficeDesktop, 0.30),
        (Archetype::Laptop, 0.15),
        (Archetype::BuildFarm, 0.10),
    ]
}

impl FleetConfig {
    /// A small configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        FleetConfig {
            machines: 200,
            days: 14,
            sketch_k: 512,
            chunk_size: 16,
            ..FleetConfig::default()
        }
    }

    /// How many machines each archetype receives: proportional to its
    /// weight, floors first, remainder to the largest fractional parts
    /// (ties broken by mix order). Deterministic; sums to `machines`.
    pub fn archetype_counts(&self) -> Vec<(Archetype, usize)> {
        let active: Vec<(Archetype, f64)> =
            self.mix.iter().filter(|(_, w)| *w > 0.0).copied().collect();
        let total_w: f64 = active.iter().map(|(_, w)| w).sum();
        if active.is_empty() || total_w <= 0.0 || self.machines == 0 {
            return Vec::new();
        }
        let mut counts: Vec<(Archetype, usize)> = Vec::with_capacity(active.len());
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(active.len());
        let mut assigned = 0usize;
        for (i, (a, w)) in active.iter().enumerate() {
            let share = self.machines as f64 * w / total_w;
            let floor = share.floor() as usize;
            counts.push((*a, floor));
            fracs.push((i, share - floor as f64));
            assigned += floor;
        }
        // Largest-remainder apportionment for the leftover machines.
        fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for (i, _) in fracs.iter().take(self.machines - assigned) {
            counts[*i].1 += 1;
        }
        counts
    }

    /// The fully-resolved per-archetype lab configuration: the
    /// archetype's workload model with this fleet's scale and a seed
    /// derived from the fleet seed (one independent stream per
    /// archetype, machines within it split further by machine id).
    pub fn resolved_lab(&self, arch: Archetype, count: usize) -> LabConfig {
        let idx = Archetype::ALL.iter().position(|a| *a == arch).unwrap() as u64;
        LabConfig {
            seed: Rng::for_stream(self.seed, idx).next_u64(),
            machines: count,
            days: self.days,
            ..arch.lab_config()
        }
    }
}

/// Per-archetype and combined streaming analyses for one fleet run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// One accumulator per archetype with a nonzero machine count, in
    /// [`Archetype::ALL`] order restricted to the mix.
    pub per_archetype: Vec<(Archetype, StreamingAnalysis)>,
    /// All archetypes merged.
    pub combined: StreamingAnalysis,
}

impl FleetResult {
    /// The accumulator for one archetype, if it was part of the mix.
    pub fn archetype(&self, a: Archetype) -> Option<&StreamingAnalysis> {
        self.per_archetype
            .iter()
            .find(|(b, _)| *b == a)
            .map(|(_, s)| s)
    }
}

/// Runs the whole fleet: every machine is traced with the batched
/// tracer and folded into streaming accumulators. Peak memory is
/// `O(chunks_in_flight × (days + sketch_k))` — independent of the
/// machine count. Deterministic in the seed for any worker count.
pub fn run_fleet(cfg: &FleetConfig) -> FleetResult {
    let counts = cfg.archetype_counts();
    let start_weekday = LabConfig::default().start_weekday;

    // Resolve per-archetype testbed configs and the global machine
    // layout: archetype `a` owns the contiguous block
    // [prefix[a], prefix[a] + count_a).
    let mut testbeds: Vec<TestbedConfig> = Vec::with_capacity(counts.len());
    let mut prefix: Vec<usize> = Vec::with_capacity(counts.len() + 1);
    prefix.push(0);
    for (arch, count) in &counts {
        testbeds.push(TestbedConfig {
            lab: cfg.resolved_lab(*arch, *count),
            detector: cfg.detector,
        });
        prefix.push(prefix.last().unwrap() + count);
    }
    let total = *prefix.last().unwrap();

    // Fixed-size chunks of the global machine index space.
    let chunk = cfg.chunk_size.max(1);
    let chunks: Vec<(usize, usize)> = (0..total)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(total)))
        .collect();

    let fresh = |k: usize| -> Vec<StreamingAnalysis> {
        counts
            .iter()
            .map(|_| StreamingAnalysis::new(cfg.days, start_weekday, k))
            .collect()
    };

    let partials = fgcs_par::par_map(&chunks, |&(lo, hi)| {
        let mut accs = fresh(cfg.sketch_k);
        for m in lo..hi {
            // Which archetype block does global machine `m` fall in?
            let a = prefix.partition_point(|&p| p <= m) - 1;
            let local = m - prefix[a];
            let records = trace_machine_batched(&testbeds[a], local);
            accs[a].push_machine(&records);
        }
        accs
    });

    // In-order merge: bit-identical regardless of how chunks were
    // scheduled across workers.
    let mut per: Vec<StreamingAnalysis> = fresh(cfg.sketch_k);
    for chunk_accs in &partials {
        for (mine, theirs) in per.iter_mut().zip(chunk_accs) {
            mine.merge(theirs);
        }
    }

    let mut combined = StreamingAnalysis::new(cfg.days, start_weekday, cfg.sketch_k);
    for acc in &per {
        combined.merge(acc);
    }
    FleetResult {
        per_archetype: counts.iter().map(|(a, _)| *a).zip(per).collect(),
        combined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_core::model::FailureCause;

    #[test]
    fn counts_are_proportional_and_exact() {
        let cfg = FleetConfig {
            machines: 1_003,
            ..FleetConfig::default()
        };
        let counts = cfg.archetype_counts();
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<usize>(), 1_003);
        assert_eq!(counts.len(), 5);
        for (a, c) in &counts {
            let w = cfg.mix.iter().find(|(b, _)| b == a).unwrap().1;
            let share = 1_003.0 * w;
            assert!(
                (*c as f64 - share).abs() <= 1.0,
                "{a:?}: {c} vs share {share}"
            );
        }
    }

    #[test]
    fn zero_weight_archetypes_are_excluded() {
        let cfg = FleetConfig {
            machines: 100,
            mix: vec![(Archetype::StudentLab, 1.0), (Archetype::Laptop, 0.0)],
            ..FleetConfig::default()
        };
        let counts = cfg.archetype_counts();
        assert_eq!(counts, vec![(Archetype::StudentLab, 100)]);
    }

    #[test]
    fn fleet_run_is_deterministic_across_worker_counts() {
        let mut cfg = FleetConfig::smoke();
        cfg.machines = 40;
        cfg.days = 5;
        cfg.chunk_size = 7; // deliberately not a divisor of 40
        let prev = std::env::var("FGCS_PAR_WORKERS").ok();
        std::env::set_var("FGCS_PAR_WORKERS", "1");
        let a = run_fleet(&cfg);
        std::env::set_var("FGCS_PAR_WORKERS", "4");
        let b = run_fleet(&cfg);
        match prev {
            Some(v) => std::env::set_var("FGCS_PAR_WORKERS", v),
            None => std::env::remove_var("FGCS_PAR_WORKERS"),
        }
        assert_eq!(format!("{:?}", a.combined), format!("{:?}", b.combined));
        for ((aa, x), (ab, y)) in a.per_archetype.iter().zip(&b.per_archetype) {
            assert_eq!(aa, ab);
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn archetypes_behave_according_to_their_story() {
        let mut cfg = FleetConfig::smoke();
        cfg.machines = 50;
        cfg.days = 14;
        let result = run_fleet(&cfg);
        assert_eq!(result.combined.machines(), 50);

        let t2 = |a: Archetype| {
            result
                .archetype(a)
                .expect("in default mix")
                .table2_summary()
        };
        // Server farms barely go unavailable compared to labs.
        let lab = t2(Archetype::StudentLab);
        let servers = t2(Archetype::ServerFarm);
        let lab_rate = lab.occurrences as f64 / lab.machines as f64;
        let server_rate = servers.occurrences as f64 / servers.machines as f64;
        assert!(
            server_rate < lab_rate,
            "servers {server_rate} vs lab {lab_rate}"
        );
        // Office desktops see far more revocation (nightly power-off).
        let office = t2(Archetype::OfficeDesktop);
        assert!(
            office.urr.max > lab.urr.max,
            "office URR {:?} vs lab {:?}",
            office.urr,
            lab.urr
        );
        // Laptop lid-closes are revocations *without* the reboot
        // signature, so their reboot fraction collapses.
        let laptop = t2(Archetype::Laptop);
        assert!(
            laptop.urr_reboot_fraction < 0.5,
            "laptop reboot fraction {}",
            laptop.urr_reboot_fraction
        );
        assert!(laptop.urr.max > 0, "lid closes must register");
    }

    #[test]
    fn lid_close_produces_revocations_in_the_raw_trace() {
        let mut lab = Archetype::Laptop.lab_config();
        lab.machines = 4;
        lab.days = 14;
        let cfg = TestbedConfig {
            lab,
            detector: fgcs_core::detector::DetectorConfig::wallclock_default(),
        };
        let urr: usize = (0..4)
            .map(|m| {
                trace_machine_batched(&cfg, m)
                    .iter()
                    .filter(|r| r.cause == FailureCause::Revocation)
                    .count()
            })
            .sum();
        assert!(urr > 5, "lid closes over 8 laptop-weeks, got {urr}");
    }
}
