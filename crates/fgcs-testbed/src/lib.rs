//! The synthetic iShare testbed: workload generation, trace collection,
//! trace formats and the §5 analyses.
//!
//! The paper instrumented 20 student-lab Linux machines for three months;
//! that trace was never published. This crate rebuilds the pipeline
//! end-to-end on a synthetic but carefully parameterized lab model:
//!
//! * [`lab`] — the student-lab workload generator (sessions, compile
//!   bursts, the 4 AM `updatedb` job, frustration reboots, rare hardware
//!   failures), emitting exactly what a `vmstat`-style monitor observes;
//! * [`runner`] — feeds those observations through the real
//!   `fgcs-core` detector on every machine (in parallel) and records
//!   unavailability occurrences;
//! * [`trace`] — the event-trace schema with JSONL and CSV round-trips;
//! * [`loadtrace`] — the raw monitor-sample layer underneath it, with
//!   offline event derivation (re-analyze archived logs under any
//!   thresholds);
//! * [`analysis`] — Table 2, Figure 6, Figure 7 and the §5.3 regularity
//!   analysis;
//! * [`streaming`] — the same analyses as bounded-memory sketch folds
//!   that scale to fleets of 100k+ machines;
//! * [`fleet`] — archetype-mixed fleet generation (labs, server farms,
//!   office desktops, laptops, build farms) with deterministic chunked
//!   fan-out;
//! * [`calendar`] — weekday/weekend and hour-of-day arithmetic;
//! * [`scenarios`] — the §6 future-work testbeds (enterprise desktop,
//!   home PC) as ready-made configurations.
//!
//! ```
//! use fgcs_testbed::runner::{run_testbed, TestbedConfig};
//! use fgcs_testbed::analysis;
//!
//! let mut cfg = TestbedConfig::tiny();
//! cfg.lab.days = 2;
//! let trace = run_testbed(&cfg);
//! let t2 = analysis::table2(&trace);
//! assert!(t2.total.max > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod calendar;
pub mod fleet;
pub mod json;
pub mod lab;
pub mod loadtrace;
pub mod quality;
pub mod runner;
pub mod scenarios;
pub mod streaming;
pub mod trace;

pub use fleet::{run_fleet, Archetype, FleetConfig, FleetResult};
pub use lab::{LabConfig, LoadSample, MachinePlan};
pub use quality::{MachineQuality, QualityTotals, TraceQualityReport};
pub use runner::{
    backoff_delay, run_testbed, run_testbed_faulty, trace_machine, trace_machine_batched,
    trace_machine_supervised, OccurrenceRecorder, RecorderRestoreError, RecorderSnapshot,
    SupervisorConfig, TestbedConfig,
};
pub use streaming::{StreamingAnalysis, Table2Summary};
pub use trace::{Trace, TraceError, TraceMeta, TraceRecord};
