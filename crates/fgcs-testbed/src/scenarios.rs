//! Alternative testbed scenarios — the paper's §6 future work.
//!
//! "In the future work, we plan to collect trace on testbeds with
//! different patterns of host workloads, for example a testbed
//! containing enterprise desktop resources. We expect that data
//! collected on the proposed testbeds will present similar
//! predictability..."
//!
//! This module provides those testbeds as [`LabConfig`] presets, so the
//! expectation can be tested (experiment `scenarios`):
//!
//! * [`student_lab`] — the paper's original environment (the default
//!   config): shared machines, evening-heavy usage, reboot-happy users;
//! * [`enterprise_desktop`] — office PCs: strict 9-to-5 occupancy, a
//!   single owner per machine, almost no reboots (the paper: "such
//!   machine reboots would be very rare on hosts used by only one local
//!   user"), backup jobs instead of `updatedb` at night;
//! * [`home_pc`] — the SETI@home demographic: evening/weekend usage,
//!   long fully-idle stretches, machines owned by one user.

use crate::lab::LabConfig;

/// The paper's student-lab testbed (the crate default), named.
pub fn student_lab() -> LabConfig {
    LabConfig::default()
}

/// An enterprise-desktop testbed: office hours, one user per machine.
pub fn enterprise_desktop() -> LabConfig {
    LabConfig {
        seed: 20060101,
        // Sharp office-hours profile, quiet nights and lunch dip.
        weekday_occupancy: [
            0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.04, 0.15, 0.55, 0.75, 0.80, 0.78, 0.55, 0.70,
            0.80, 0.78, 0.72, 0.55, 0.25, 0.10, 0.06, 0.04, 0.03, 0.02,
        ],
        // Weekends nearly empty.
        weekend_occupancy: [
            0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.03, 0.05, 0.08, 0.10, 0.10, 0.08, 0.08,
            0.08, 0.08, 0.06, 0.05, 0.04, 0.03, 0.03, 0.02, 0.02, 0.02,
        ],
        // Longer sittings (a workday is one long session).
        session_median_mins: 150.0,
        session_sigma: 0.6,
        // Office work bursts less than student compile loops.
        bursts_per_session_hour: 0.40,
        // "Machine reboots would be very rare on hosts used by only one
        // local user."
        reboots_per_session_hour: 0.001,
        // The nightly backup replaces updatedb as the cron signature.
        updatedb_load: 0.80,
        updatedb_duration_secs: 2_400,
        ..LabConfig::default()
    }
}

/// A home-PC testbed: evening and weekend usage, long idle stretches.
pub fn home_pc() -> LabConfig {
    LabConfig {
        seed: 20060201,
        weekday_occupancy: [
            0.04, 0.02, 0.01, 0.01, 0.01, 0.01, 0.03, 0.08, 0.06, 0.04, 0.04, 0.04, 0.06, 0.05,
            0.05, 0.05, 0.08, 0.20, 0.40, 0.55, 0.60, 0.50, 0.30, 0.12,
        ],
        weekend_occupancy: [
            0.06, 0.03, 0.02, 0.01, 0.01, 0.01, 0.02, 0.04, 0.10, 0.20, 0.30, 0.35, 0.35, 0.35,
            0.35, 0.35, 0.35, 0.38, 0.45, 0.50, 0.50, 0.42, 0.28, 0.14,
        ],
        session_median_mins: 75.0,
        // Gaming and media bursts are frequent while the owner is there.
        bursts_per_session_hour: 0.9,
        burst_load: (0.7, 1.0),
        // Home users do reboot, but they are alone on the box.
        reboots_per_session_hour: 0.004,
        // No lab cron job.
        updatedb: false,
        ..LabConfig::default()
    }
}

/// All three scenarios, named.
pub fn all() -> Vec<(&'static str, LabConfig)> {
    vec![
        ("student-lab", student_lab()),
        ("enterprise", enterprise_desktop()),
        ("home-pc", home_pc()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::runner::{run_testbed, TestbedConfig};
    use fgcs_core::detector::DetectorConfig;

    fn small(mut lab: LabConfig) -> TestbedConfig {
        lab.machines = 4;
        lab.days = 14;
        TestbedConfig {
            lab,
            detector: DetectorConfig::wallclock_default(),
        }
    }

    #[test]
    fn profiles_are_valid_occupancies() {
        for (name, cfg) in all() {
            for &p in cfg
                .weekday_occupancy
                .iter()
                .chain(cfg.weekend_occupancy.iter())
            {
                assert!((0.0..0.95).contains(&p), "{name}: occupancy {p}");
            }
        }
    }

    #[test]
    fn enterprise_is_office_hours_shaped() {
        let trace = run_testbed(&small(enterprise_desktop()));
        let hourly = analysis::hourly(&trace);
        let office = hourly.weekday.get(&10).map(|s| s.mean()).unwrap_or(0.0);
        let evening = hourly.weekday.get(&21).map(|s| s.mean()).unwrap_or(0.0);
        assert!(office > evening, "office {office} evening {evening}");
    }

    #[test]
    fn home_pc_is_evening_shaped() {
        let trace = run_testbed(&small(home_pc()));
        let hourly = analysis::hourly(&trace);
        let evening = hourly.weekday.get(&20).map(|s| s.mean()).unwrap_or(0.0);
        let morning = hourly.weekday.get(&9).map(|s| s.mean()).unwrap_or(0.0);
        assert!(evening > morning, "evening {evening} morning {morning}");
    }

    #[test]
    fn enterprise_has_fewer_reboots_than_the_lab() {
        let lab = analysis::table2(&run_testbed(&small(student_lab())));
        let ent = analysis::table2(&run_testbed(&small(enterprise_desktop())));
        let urr = |t2: &analysis::Table2| -> usize { t2.per_machine.iter().map(|c| c.urr).sum() };
        assert!(
            urr(&ent) <= urr(&lab),
            "enterprise {} lab {}",
            urr(&ent),
            urr(&lab)
        );
    }

    #[test]
    fn home_pc_weekend_is_not_quieter_than_weekday() {
        // Unlike the lab, home machines are *busier* on weekends.
        let trace = run_testbed(&small(home_pc()));
        let m = analysis::day_hour_counts(&trace);
        let mut wd = (0.0, 0u32);
        let mut we = (0.0, 0u32);
        for (day, hours) in m.iter().enumerate() {
            let total: u32 = hours.iter().sum();
            match crate::calendar::day_type(day as u64, trace.meta.start_weekday) {
                crate::calendar::DayType::Weekday => {
                    wd.0 += total as f64;
                    wd.1 += 1;
                }
                crate::calendar::DayType::Weekend => {
                    we.0 += total as f64;
                    we.1 += 1;
                }
            }
        }
        let wd_mean = wd.0 / wd.1.max(1) as f64;
        let we_mean = we.0 / we.1.max(1) as f64;
        assert!(
            we_mean >= wd_mean * 0.8,
            "weekday {wd_mean} weekend {we_mean}"
        );
    }
}
