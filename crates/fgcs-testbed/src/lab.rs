//! The synthetic student-lab workload generator.
//!
//! The paper traced 20 RedHat Linux machines "in a general purpose
//! computer laboratory for student use at Purdue University" for three
//! months. That trace is not published, so this module generates the
//! closest synthetic equivalent, parameterized by everything the paper
//! *does* report about the environment:
//!
//! * students log on with a strong diurnal/weekly pattern ("unavailability
//!   happens more frequently during the day time after 10 AM with more
//!   students using the machines"), doing editing, compiling and testing
//!   — modeled as sessions with a low interactive base load plus short
//!   heavy bursts;
//! * the `updatedb` cron job runs at 4 AM every day for about 30 minutes
//!   at high CPU on every machine;
//! * users occasionally reboot a slow machine (the dominant URR source,
//!   ~90%), and rare hardware/software failures take a machine down for
//!   hours;
//! * machines have more than 1 GB of memory, so thrashing (S4) needs a
//!   memory-hungry burst (large compile/link jobs) on top of the base
//!   load.
//!
//! The generator produces the exact observable stream the real iShare
//! monitor would have sampled: `(host_load, host_resident_mb, alive)` at
//! the monitor period, deterministic from the seed.

use fgcs_stats::dist::{Exponential, LogNormal, Poisson, Sample, Uniform};
use fgcs_stats::rng::Rng;

use crate::calendar::{day_type, DayType, SECS_PER_DAY, SECS_PER_HOUR};

/// Lab model configuration. Defaults reproduce the paper's testbed
/// statistics (Table 2, Figures 6–7); every knob is exposed so the
/// "different patterns of host workloads" future-work experiments can
/// retarget it.
#[derive(Debug, Clone, PartialEq)]
pub struct LabConfig {
    /// Master seed; machine `i` derives stream `i`.
    pub seed: u64,
    /// Number of machines (paper: 20).
    pub machines: usize,
    /// Trace length in days (paper: ~92, three months).
    pub days: usize,
    /// Monitor sampling period, seconds.
    pub sample_period: u64,
    /// Weekday the trace starts on (0 = Monday).
    pub start_weekday: u8,
    /// Physical memory per machine, MB ("larger than 1 GB").
    pub phys_mem_mb: u32,
    /// Kernel-reserved memory, MB.
    pub kernel_mem_mb: u32,
    /// Probability a machine's console is occupied, per hour of a
    /// weekday.
    pub weekday_occupancy: [f64; 24],
    /// Same for weekend days.
    pub weekend_occupancy: [f64; 24],
    /// Median session length, minutes.
    pub session_median_mins: f64,
    /// Log-normal sigma of session length.
    pub session_sigma: f64,
    /// Heavy bursts (compiles, test runs) per occupied hour.
    pub bursts_per_session_hour: f64,
    /// Median burst length, seconds.
    pub burst_median_secs: f64,
    /// Log-normal sigma of burst length.
    pub burst_sigma: f64,
    /// Uniform range of the extra host load during a burst.
    pub burst_load: (f64, f64),
    /// Fraction of bursts that are also memory-hungry (S4 material).
    pub mem_burst_prob: f64,
    /// Uniform range of extra resident memory during a memory burst, MB.
    pub mem_burst_mb: (u32, u32),
    /// Frustration reboots per occupied hour.
    pub reboots_per_session_hour: f64,
    /// Reboot downtime range, seconds (kept under a minute, the paper's
    /// reboot signature).
    pub reboot_downtime_secs: (u64, u64),
    /// Hardware/software failures per machine-day.
    pub hw_failures_per_day: f64,
    /// Median hardware-failure downtime, seconds.
    pub hw_downtime_median_secs: f64,
    /// Whether the 4 AM `updatedb` cron job runs.
    pub updatedb: bool,
    /// Host load imposed by `updatedb` while it runs.
    pub updatedb_load: f64,
    /// `updatedb` duration, seconds (paper: "lasts for about 30 minutes").
    pub updatedb_duration_secs: u64,
    /// Machine base resident memory (daemons etc.), MB.
    pub base_resident_mb: u32,
    /// Extra resident memory while a session is active, MB range.
    pub session_resident_mb: (u32, u32),
    /// Idle-machine background load ceiling.
    pub idle_load_max: f64,
    /// Interactive base load range while a session is active.
    pub session_load: (f64, f64),
    /// Short system-load blips per hour of machine uptime: "the host CPU
    /// load which exceeds Th2 will drop down shortly after several
    /// seconds. The transiently high CPU load may be caused by a host
    /// user starting remote X applications or by some system processes"
    /// (§4). These exercise the detector's suspend/resume path; they are
    /// too short to create unavailability under the 1-minute tolerance.
    pub blips_per_hour: f64,
    /// Blip duration range, seconds (kept under the spike tolerance).
    pub blip_secs: (u64, u64),
    /// Blip load range.
    pub blip_load: (f64, f64),
    /// Heterogeneity across machines: machine `i` of `n` scales its
    /// occupancy by `1 - spread/2 + spread * i/(n-1)`. Real labs are not
    /// uniform — corner machines see less use — and this is what gives a
    /// proactive scheduler something to exploit. The default is mild
    /// (the paper's per-machine Table 2 ranges are fairly tight); the
    /// proactive-scheduling experiment raises it explicitly.
    pub machine_busyness_spread: f64,
    /// Office-desktop archetype: the machine is powered off overnight
    /// between `(off_hour, on_hour)` (wrapping past midnight when
    /// `on_hour <= off_hour`). `None` (the default) disables the
    /// behavior and draws no randomness, keeping existing seeds
    /// bit-identical.
    pub nightly_off_hours: Option<(u8, u8)>,
    /// Probability (per day) that the user actually shuts the machine
    /// down when [`Self::nightly_off_hours`] is set.
    pub nightly_off_prob: f64,
    /// Laptop archetype: lid-close revocations per occupied hour. The
    /// machine simply vanishes mid-session — the paper's S5 without the
    /// reboot signature. `0.0` (the default) draws no randomness.
    pub lid_close_per_session_hour: f64,
    /// Lid-close downtime range, seconds (long enough to never look
    /// like a reboot).
    pub lid_close_secs: (u64, u64),
    /// Build-farm archetype: session-independent compile storms per
    /// day (whole-farm CI bursts). `0.0` (the default) draws no
    /// randomness.
    pub storms_per_day: f64,
    /// Compile-storm duration range, seconds.
    pub storm_secs: (u64, u64),
    /// Compile-storm load range.
    pub storm_load: (f64, f64),
    /// Compile-storm resident-memory range, MB.
    pub storm_mem_mb: (u32, u32),
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            seed: 20050801, // the trace began in August 2005
            machines: 20,
            days: 92,
            sample_period: 15,
            start_weekday: 0,
            phys_mem_mb: 1124,
            kernel_mem_mb: 100,
            weekday_occupancy: [
                0.10, 0.06, 0.04, 0.03, 0.03, 0.03, 0.04, 0.08, 0.18, 0.32, 0.45, 0.52, 0.55, 0.58,
                0.60, 0.62, 0.60, 0.55, 0.48, 0.42, 0.38, 0.32, 0.24, 0.15,
            ],
            weekend_occupancy: [
                0.08, 0.05, 0.04, 0.03, 0.02, 0.02, 0.03, 0.04, 0.08, 0.12, 0.18, 0.22, 0.25, 0.26,
                0.28, 0.28, 0.26, 0.24, 0.22, 0.20, 0.18, 0.15, 0.12, 0.10,
            ],
            session_median_mins: 45.0,
            session_sigma: 0.8,
            bursts_per_session_hour: 0.68,
            burst_median_secs: 300.0,
            burst_sigma: 0.7,
            burst_load: (0.60, 0.97),
            mem_burst_prob: 0.31,
            mem_burst_mb: (700, 980),
            reboots_per_session_hour: 0.010,
            reboot_downtime_secs: (15, 40),
            hw_failures_per_day: 0.008,
            hw_downtime_median_secs: 7_200.0,
            updatedb: true,
            updatedb_load: 0.85,
            updatedb_duration_secs: 1_800,
            base_resident_mb: 210,
            session_resident_mb: (80, 260),
            idle_load_max: 0.03,
            session_load: (0.04, 0.16),
            blips_per_hour: 1.5,
            blip_secs: (5, 40),
            blip_load: (0.70, 0.95),
            machine_busyness_spread: 0.15,
            nightly_off_hours: None,
            nightly_off_prob: 0.0,
            lid_close_per_session_hour: 0.0,
            lid_close_secs: (120, 1_800),
            storms_per_day: 0.0,
            storm_secs: (300, 2_700),
            storm_load: (0.75, 1.0),
            storm_mem_mb: (400, 900),
        }
    }
}

impl LabConfig {
    /// Total trace span in seconds.
    pub fn span_secs(&self) -> u64 {
        self.days as u64 * SECS_PER_DAY
    }

    /// A small configuration for tests: 2 machines, 4 days.
    pub fn tiny() -> Self {
        LabConfig {
            machines: 2,
            days: 4,
            ..LabConfig::default()
        }
    }

    /// Memory left for a guest process when host + system processes
    /// hold `resident_mb`: physical minus kernel minus resident,
    /// saturating at zero.
    pub fn free_for_guest_mb(&self, resident_mb: u32) -> u32 {
        self.phys_mem_mb
            .saturating_sub(self.kernel_mem_mb)
            .saturating_sub(resident_mb)
    }

    /// The occupancy profile for a day type.
    pub fn occupancy(&self, dt: DayType) -> &[f64; 24] {
        match dt {
            DayType::Weekday => &self.weekday_occupancy,
            DayType::Weekend => &self.weekend_occupancy,
        }
    }

    /// Session arrival rate (per second) that yields the target
    /// occupancy under the one-session-at-a-time policy: for an M/G/1/1
    /// loss system, occupancy `p = ρ/(1+ρ)` with `ρ = λ·E[S]`, so
    /// `λ = p / ((1-p)·E[S])`.
    fn arrival_rate(&self, occupancy: f64) -> f64 {
        let p = occupancy.clamp(0.0, 0.95);
        if p == 0.0 {
            return 0.0;
        }
        let mean_secs =
            self.session_median_mins * 60.0 * (self.session_sigma * self.session_sigma / 2.0).exp();
        p / ((1.0 - p) * mean_secs)
    }
}

/// One observable sample of a machine, as the monitor would read it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSample {
    /// Timestamp, seconds since trace start.
    pub t: u64,
    /// Host CPU load in `[0, 1]`.
    pub host_load: f64,
    /// Resident memory of host + system processes, MB (excl. kernel).
    pub host_resident_mb: u32,
    /// Machine/service liveness.
    pub alive: bool,
}

impl fgcs_faults::Timestamped for LoadSample {
    fn ts(&self) -> u64 {
        self.t
    }
    fn set_ts(&mut self, t: u64) {
        self.t = t;
    }
}

/// A half-open time interval with a load and memory contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Contribution {
    start: u64,
    end: u64,
    load: f64,
    mem_mb: u32,
}

/// The generated plan for one machine over the whole trace span.
#[derive(Debug, Clone)]
pub struct MachinePlan {
    cfg: LabConfig,
    /// Additive load/memory contributions, sorted by start.
    contributions: Vec<Contribution>,
    /// Downtime intervals, sorted, non-overlapping.
    downtimes: Vec<(u64, u64)>,
    /// Per-sample background noise seed.
    noise_seed: u64,
}

impl MachinePlan {
    /// Generates machine `machine_id`'s plan, deterministic in
    /// `(cfg.seed, machine_id)`.
    pub fn generate(cfg: &LabConfig, machine_id: usize) -> Self {
        let mut rng = Rng::for_stream(cfg.seed, machine_id as u64);
        let busyness = if cfg.machines > 1 {
            1.0 - cfg.machine_busyness_spread / 2.0
                + cfg.machine_busyness_spread * machine_id as f64 / (cfg.machines - 1) as f64
        } else {
            1.0
        };
        let mut contributions: Vec<Contribution> = Vec::new();
        let mut downtimes: Vec<(u64, u64)> = Vec::new();
        let span = cfg.span_secs();

        let session_len = LogNormal::with_median(cfg.session_median_mins * 60.0, cfg.session_sigma);
        let burst_len = LogNormal::with_median(cfg.burst_median_secs, cfg.burst_sigma);
        let burst_load = Uniform::new(cfg.burst_load.0, cfg.burst_load.1);
        let session_load = Uniform::new(cfg.session_load.0, cfg.session_load.1);

        // --- Sessions, with the one-at-a-time console policy. ---
        let mut busy_until: u64 = 0;
        for day in 0..cfg.days as u64 {
            let dt = day_type(day, cfg.start_weekday);
            let profile = *cfg.occupancy(dt);
            for hour in 0..24u64 {
                let hour_start = day * SECS_PER_DAY + hour * SECS_PER_HOUR;
                let lambda = cfg.arrival_rate((profile[hour as usize] * busyness).min(0.95));
                if lambda <= 0.0 {
                    continue;
                }
                // Poisson arrivals within the hour.
                let n = Poisson::new(lambda * SECS_PER_HOUR as f64).sample(&mut rng);
                for _ in 0..n {
                    let start = hour_start + rng.below(SECS_PER_HOUR);
                    if start < busy_until {
                        continue; // console already taken
                    }
                    let dur = session_len.sample(&mut rng).clamp(300.0, 6.0 * 3600.0) as u64;
                    let end = (start + dur).min(span);
                    busy_until = end;
                    contributions.push(Contribution {
                        start,
                        end,
                        load: session_load.sample(&mut rng),
                        mem_mb: rng.range_u64(
                            cfg.session_resident_mb.0 as u64,
                            cfg.session_resident_mb.1 as u64 + 1,
                        ) as u32,
                    });

                    // Heavy bursts within the session.
                    let hours = (end - start) as f64 / SECS_PER_HOUR as f64;
                    let bursts = Poisson::new(cfg.bursts_per_session_hour * hours).sample(&mut rng);
                    for _ in 0..bursts {
                        let bs = start + rng.below((end - start).max(1));
                        let bd = burst_len.sample(&mut rng).clamp(20.0, 900.0) as u64;
                        let be = (bs + bd).min(end);
                        let mem = if rng.chance(cfg.mem_burst_prob) {
                            rng.range_u64(cfg.mem_burst_mb.0 as u64, cfg.mem_burst_mb.1 as u64 + 1)
                                as u32
                        } else {
                            rng.range_u64(30, 120) as u32
                        };
                        contributions.push(Contribution {
                            start: bs,
                            end: be,
                            load: burst_load.sample(&mut rng),
                            mem_mb: mem,
                        });
                    }

                    // Frustration reboot during the session?
                    if rng.chance(cfg.reboots_per_session_hour * hours) {
                        let rs = start + rng.below((end - start).max(1));
                        let rd = rng
                            .range_u64(cfg.reboot_downtime_secs.0, cfg.reboot_downtime_secs.1 + 1);
                        downtimes.push((rs, (rs + rd).min(span)));
                    }

                    // Lid close mid-session (laptop archetype)? The
                    // `> 0.0` gate short-circuits before any draw so
                    // default configs keep their RNG streams.
                    if cfg.lid_close_per_session_hour > 0.0
                        && rng.chance(cfg.lid_close_per_session_hour * hours)
                    {
                        let ls = start + rng.below((end - start).max(1));
                        let ld = rng.range_u64(cfg.lid_close_secs.0, cfg.lid_close_secs.1 + 1);
                        downtimes.push((ls, (ls + ld).min(span)));
                    }
                }
            }

            // --- Short system blips, §4's transient spikes. ---
            if cfg.blips_per_hour > 0.0 {
                let n = Poisson::new(cfg.blips_per_hour * 24.0).sample(&mut rng);
                for _ in 0..n {
                    let bs = day * SECS_PER_DAY + rng.below(SECS_PER_DAY);
                    let bd = rng.range_u64(cfg.blip_secs.0, cfg.blip_secs.1 + 1);
                    contributions.push(Contribution {
                        start: bs,
                        end: (bs + bd).min(span),
                        load: rng.range_f64(cfg.blip_load.0, cfg.blip_load.1),
                        mem_mb: 10,
                    });
                }
            }

            // --- updatedb at 4 AM. ---
            if cfg.updatedb {
                let start = day * SECS_PER_DAY + 4 * SECS_PER_HOUR + rng.below(120);
                let dur = cfg.updatedb_duration_secs + rng.below(240);
                contributions.push(Contribution {
                    start,
                    end: (start + dur).min(span),
                    load: cfg.updatedb_load,
                    mem_mb: 40,
                });
            }

            // --- Compile storms (build-farm archetype). ---
            if cfg.storms_per_day > 0.0 {
                let n = Poisson::new(cfg.storms_per_day).sample(&mut rng);
                for _ in 0..n {
                    let ss = day * SECS_PER_DAY + rng.below(SECS_PER_DAY);
                    let sd = rng.range_u64(cfg.storm_secs.0, cfg.storm_secs.1 + 1);
                    contributions.push(Contribution {
                        start: ss,
                        end: (ss + sd).min(span),
                        load: rng.range_f64(cfg.storm_load.0, cfg.storm_load.1),
                        mem_mb: rng
                            .range_u64(cfg.storm_mem_mb.0 as u64, cfg.storm_mem_mb.1 as u64 + 1)
                            as u32,
                    });
                }
            }

            // --- Nightly power-off (office-desktop archetype). ---
            if let Some((off_h, on_h)) = cfg.nightly_off_hours {
                if cfg.nightly_off_prob > 0.0 && rng.chance(cfg.nightly_off_prob) {
                    let off = day * SECS_PER_DAY
                        + off_h as u64 % 24 * SECS_PER_HOUR
                        + rng.below(SECS_PER_HOUR);
                    let on_day = if on_h <= off_h { day + 1 } else { day };
                    let on = on_day * SECS_PER_DAY
                        + on_h as u64 % 24 * SECS_PER_HOUR
                        + rng.below(SECS_PER_HOUR);
                    if on > off {
                        downtimes.push((off.min(span), on.min(span)));
                    }
                }
            }
        }

        // --- Hardware/software failures over the whole span. ---
        let hw = Exponential::new((cfg.hw_failures_per_day / SECS_PER_DAY as f64).max(1e-12));
        let hw_down = LogNormal::with_median(cfg.hw_downtime_median_secs, 1.0);
        let mut t = hw.sample(&mut rng) as u64;
        while t < span && cfg.hw_failures_per_day > 0.0 {
            let dur = hw_down.sample(&mut rng).clamp(600.0, 12.0 * 3600.0) as u64;
            downtimes.push((t, (t + dur).min(span)));
            t += dur + hw.sample(&mut rng) as u64;
        }

        contributions.sort_by_key(|c| c.start);
        downtimes.sort_unstable();
        // Merge overlapping downtimes.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(downtimes.len());
        for (s, e) in downtimes {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }

        // A reboot or crash kills every user process: truncate
        // contributions at the first downtime they overlap (the user logs
        // back in as a *new* session, which we do not re-create).
        for c in &mut contributions {
            for &(ds, de) in &merged {
                if ds >= c.end {
                    break;
                }
                if de <= c.start {
                    continue; // outage ended before this process started
                }
                // Outage overlaps the contribution: it dies at the outage
                // start (or never ran if it "started" mid-outage).
                c.end = ds.max(c.start);
                break;
            }
        }
        contributions.retain(|c| c.end > c.start);

        MachinePlan {
            cfg: cfg.clone(),
            contributions,
            downtimes: merged,
            noise_seed: rng.next_u64(),
        }
    }

    /// Downtime intervals (for tests and ground-truth comparisons).
    pub fn downtimes(&self) -> &[(u64, u64)] {
        &self.downtimes
    }

    /// Number of load/memory contributions (diagnostic).
    pub fn contribution_count(&self) -> usize {
        self.contributions.len()
    }

    /// Iterates monitor samples over the whole span.
    pub fn samples(&self) -> SampleIter<'_> {
        SampleIter {
            plan: self,
            t: 0,
            next_contrib: 0,
            active: Vec::new(),
            next_down: 0,
            noise: Rng::new(self.noise_seed),
        }
    }

    /// Seed of the per-sample background-noise stream (the batched
    /// tracer replays it sample-for-sample to stay bit-identical with
    /// [`Self::samples`]).
    pub(crate) fn noise_seed(&self) -> u64 {
        self.noise_seed
    }

    /// Iterates maximal time spans over which the machine's state is
    /// constant: same liveness, same set of active contributions. Within
    /// a span every monitor sample differs only by the background-noise
    /// draw, which lets the fleet tracer process whole spans at a time
    /// instead of re-deriving the active set per sample.
    ///
    /// The spans exactly tile `[0, span_secs)`, and evaluating
    /// [`Self::samples`] at any `t` inside a span observes precisely
    /// `loads`/`mem_mb` (alive) or a dead sample.
    pub fn spans(&self) -> PlanSpanIter<'_> {
        PlanSpanIter {
            plan: self,
            t: 0,
            next_contrib: 0,
            active: Vec::new(),
            next_down: 0,
        }
    }
}

/// A maximal constant-state span of a [`MachinePlan`]: see
/// [`MachinePlan::spans`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpan {
    /// Span start, inclusive (seconds since trace start).
    pub start: u64,
    /// Span end, exclusive.
    pub end: u64,
    /// True if the machine is down for the whole span.
    pub dead: bool,
    /// Load of each active contribution, in activation order (the
    /// per-sample sum `noise + loads[0] + loads[1] + …` reproduces
    /// [`SampleIter`]'s float-add order bit-for-bit).
    pub loads: Vec<f64>,
    /// Total resident memory over the span, MB (the saturating fold is
    /// order-deterministic, so it is safe to precompute).
    pub mem_mb: u32,
}

/// Iterator over [`PlanSpan`]s: see [`MachinePlan::spans`].
#[derive(Debug, Clone)]
pub struct PlanSpanIter<'a> {
    plan: &'a MachinePlan,
    t: u64,
    next_contrib: usize,
    active: Vec<Contribution>,
    next_down: usize,
}

impl Iterator for PlanSpanIter<'_> {
    type Item = PlanSpan;

    fn next(&mut self) -> Option<PlanSpan> {
        let plan = self.plan;
        let span_secs = plan.cfg.span_secs();
        if self.t >= span_secs {
            return None;
        }
        let t = self.t;

        // Mirror SampleIter's bookkeeping at time `t`.
        while self.next_contrib < plan.contributions.len()
            && plan.contributions[self.next_contrib].start <= t
        {
            self.active.push(plan.contributions[self.next_contrib]);
            self.next_contrib += 1;
        }
        self.active.retain(|c| c.end > t);
        while self.next_down < plan.downtimes.len() && plan.downtimes[self.next_down].1 <= t {
            self.next_down += 1;
        }
        let down = plan.downtimes.get(self.next_down);
        let dead = down.map(|&(s, e)| s <= t && t < e).unwrap_or(false);

        // The span extends to the next state change: a contribution
        // starting or ending, or a downtime boundary.
        let mut end = span_secs;
        if let Some(c) = plan.contributions.get(self.next_contrib) {
            end = end.min(c.start);
        }
        for c in &self.active {
            end = end.min(c.end);
        }
        if let Some(&(s, e)) = down {
            end = end.min(if dead { e } else { s.max(t + 1) });
        }
        debug_assert!(end > t, "span must advance");
        self.t = end;

        let (loads, mem_mb) = if dead {
            (Vec::new(), 0)
        } else {
            let mut mem = plan.cfg.base_resident_mb;
            let mut loads = Vec::with_capacity(self.active.len());
            for c in &self.active {
                loads.push(c.load);
                mem = mem.saturating_add(c.mem_mb);
            }
            (loads, mem)
        };
        Some(PlanSpan {
            start: t,
            end,
            dead,
            loads,
            mem_mb,
        })
    }
}

/// Iterator over a machine's monitor samples.
#[derive(Debug, Clone)]
pub struct SampleIter<'a> {
    plan: &'a MachinePlan,
    t: u64,
    next_contrib: usize,
    active: Vec<Contribution>,
    next_down: usize,
    noise: Rng,
}

impl Iterator for SampleIter<'_> {
    type Item = LoadSample;

    fn next(&mut self) -> Option<LoadSample> {
        let cfg = &self.plan.cfg;
        if self.t >= cfg.span_secs() {
            return None;
        }
        let t = self.t;
        self.t += cfg.sample_period;

        // Activate contributions that have started.
        while self.next_contrib < self.plan.contributions.len()
            && self.plan.contributions[self.next_contrib].start <= t
        {
            self.active.push(self.plan.contributions[self.next_contrib]);
            self.next_contrib += 1;
        }
        // Retire expired ones.
        self.active.retain(|c| c.end > t);

        // Downtime?
        while self.next_down < self.plan.downtimes.len()
            && self.plan.downtimes[self.next_down].1 <= t
        {
            self.next_down += 1;
        }
        let down = self
            .plan
            .downtimes
            .get(self.next_down)
            .map(|&(s, e)| s <= t && t < e)
            .unwrap_or(false);
        if down {
            return Some(LoadSample {
                t,
                host_load: 0.0,
                host_resident_mb: 0,
                alive: false,
            });
        }

        let mut load: f64 = self.noise.range_f64(0.0, cfg.idle_load_max);
        let mut mem = cfg.base_resident_mb;
        for c in &self.active {
            load += c.load;
            mem = mem.saturating_add(c.mem_mb);
        }
        Some(LoadSample {
            t,
            host_load: load.min(1.0),
            host_resident_mb: mem,
            alive: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blips_are_short_and_frequent() {
        let mut cfg = LabConfig::tiny();
        cfg.bursts_per_session_hour = 0.0;
        cfg.updatedb = false;
        cfg.blips_per_hour = 4.0;
        let plan = MachinePlan::generate(&cfg, 0);
        // Count maximal runs of load above Th2-ish among alive samples.
        let mut spikes = 0u32;
        let mut in_spike = false;
        let mut longest = 0u64;
        let mut cur = 0u64;
        for s in plan.samples() {
            let hot = s.alive && s.host_load > 0.6;
            if hot {
                cur += cfg.sample_period;
                longest = longest.max(cur);
                if !in_spike {
                    spikes += 1;
                    in_spike = true;
                }
            } else {
                in_spike = false;
                cur = 0;
            }
        }
        // ~4/hour over 4 days, though sub-sample-period blips are missed.
        assert!(spikes > 50, "spikes {spikes}");
        assert!(
            longest <= 90,
            "blips must stay transient, longest {longest}s"
        );
    }

    #[test]
    fn deterministic_from_seed() {
        let cfg = LabConfig::tiny();
        let a: Vec<LoadSample> = MachinePlan::generate(&cfg, 3).samples().collect();
        let b: Vec<LoadSample> = MachinePlan::generate(&cfg, 3).samples().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn machines_differ() {
        let cfg = LabConfig::tiny();
        let a: Vec<LoadSample> = MachinePlan::generate(&cfg, 0).samples().collect();
        let b: Vec<LoadSample> = MachinePlan::generate(&cfg, 1).samples().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn sample_cadence_and_span() {
        let cfg = LabConfig::tiny();
        let samples: Vec<LoadSample> = MachinePlan::generate(&cfg, 0).samples().collect();
        assert_eq!(samples.len() as u64, cfg.span_secs() / cfg.sample_period);
        assert_eq!(samples[0].t, 0);
        assert_eq!(samples[1].t, cfg.sample_period);
        assert!(samples.last().unwrap().t < cfg.span_secs());
    }

    #[test]
    fn loads_are_bounded() {
        let cfg = LabConfig::tiny();
        for s in MachinePlan::generate(&cfg, 1).samples() {
            assert!((0.0..=1.0).contains(&s.host_load), "load {}", s.host_load);
        }
    }

    #[test]
    fn updatedb_spikes_every_day_at_4am() {
        let cfg = LabConfig::tiny();
        let plan = MachinePlan::generate(&cfg, 0);
        for day in 0..cfg.days as u64 {
            // Look for a high-load sample in the 04:05–04:25 window
            // (inside updatedb regardless of jitter).
            let lo = day * SECS_PER_DAY + 4 * SECS_PER_HOUR + 300;
            let hi = day * SECS_PER_DAY + 4 * SECS_PER_HOUR + 1500;
            let spike = plan
                .samples()
                .filter(|s| s.t >= lo && s.t < hi && s.alive)
                .any(|s| s.host_load >= cfg.updatedb_load);
            let was_down = plan.downtimes().iter().any(|&(s, e)| s < hi && e > lo);
            assert!(spike || was_down, "no updatedb spike on day {day}");
        }
    }

    #[test]
    fn no_updatedb_when_disabled() {
        let mut cfg = LabConfig::tiny();
        cfg.updatedb = false;
        cfg.bursts_per_session_hour = 0.0;
        cfg.blips_per_hour = 0.0;
        let plan = MachinePlan::generate(&cfg, 0);
        // Without updatedb and bursts, load stays at session base levels.
        let max = plan.samples().map(|s| s.host_load).fold(0.0, f64::max);
        assert!(max < 0.5, "max load {max}");
    }

    #[test]
    fn weekday_busier_than_weekend() {
        let cfg = LabConfig {
            machines: 1,
            days: 14,
            ..LabConfig::default()
        };
        let plan = MachinePlan::generate(&cfg, 0);
        let mut wd = (0.0, 0u64);
        let mut we = (0.0, 0u64);
        for s in plan.samples() {
            if !s.alive {
                continue;
            }
            match crate::calendar::day_type_at(s.t, cfg.start_weekday) {
                DayType::Weekday => {
                    wd.0 += s.host_load;
                    wd.1 += 1;
                }
                DayType::Weekend => {
                    we.0 += s.host_load;
                    we.1 += 1;
                }
            }
        }
        let wd_mean = wd.0 / wd.1 as f64;
        let we_mean = we.0 / we.1 as f64;
        assert!(wd_mean > we_mean, "weekday {wd_mean} weekend {we_mean}");
    }

    #[test]
    fn downtimes_are_sorted_and_disjoint() {
        let cfg = LabConfig {
            days: 30,
            hw_failures_per_day: 0.05, // force several
            reboots_per_session_hour: 0.05,
            ..LabConfig::default()
        };
        let plan = MachinePlan::generate(&cfg, 2);
        let d = plan.downtimes();
        assert!(!d.is_empty());
        for w in d.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap {w:?}");
        }
    }

    #[test]
    fn dead_samples_during_downtime() {
        let mut cfg = LabConfig::tiny();
        cfg.hw_failures_per_day = 0.5;
        let plan = MachinePlan::generate(&cfg, 0);
        if let Some(&(s, e)) = plan.downtimes().first() {
            let dead = plan
                .samples()
                .filter(|x| x.t >= s && x.t < e)
                .all(|x| !x.alive);
            assert!(dead);
        }
    }

    #[test]
    fn arrival_rate_inversion() {
        let cfg = LabConfig::default();
        // p = ρ/(1+ρ) must hold for the computed λ.
        let mean_secs =
            cfg.session_median_mins * 60.0 * (cfg.session_sigma * cfg.session_sigma / 2.0).exp();
        for &p in &[0.1, 0.3, 0.6] {
            let lambda = cfg.arrival_rate(p);
            let rho = lambda * mean_secs;
            assert!((rho / (1.0 + rho) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn memory_exceeds_base_during_mem_burst() {
        let mut cfg = LabConfig::tiny();
        cfg.mem_burst_prob = 1.0;
        cfg.bursts_per_session_hour = 3.0;
        let plan = MachinePlan::generate(&cfg, 0);
        let peak = plan.samples().map(|s| s.host_resident_mb).max().unwrap();
        assert!(
            peak > cfg.base_resident_mb + cfg.mem_burst_mb.0,
            "peak {peak}"
        );
    }
}
