//! Trace quality accounting: what the measurement pipeline *knows* it
//! lost.
//!
//! A hardened pipeline never silently absorbs a fault — every dropped
//! sample, censored span, crashed tracer and corrupt trace line is
//! counted here, per machine, so downstream analysis can decide what the
//! surviving data is still good for. The counts are the pipeline-side
//! mirror of [`fgcs_faults::InjectionStats`]: in a fault-matrix run the
//! two must reconcile, which is exactly what the `faults` experiment and
//! the CI smoke check assert.

use std::collections::BTreeMap;
use std::fmt;

/// Quality accounting for one machine's observation stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineQuality {
    /// Machine id.
    pub machine: u32,
    /// Samples actually delivered to the detector.
    pub samples_used: u64,
    /// Samples the fault layer reported dropping.
    pub dropped: u64,
    /// Samples delivered twice.
    pub duplicated: u64,
    /// Samples delivered late (possibly out of order).
    pub delayed: u64,
    /// Samples the supervisor discarded because their timestamp went
    /// backwards (late delivery or a backwards clock jump).
    pub out_of_order: u64,
    /// Monitor restarts observed (each swallows a run of samples).
    pub restarts: u64,
    /// Samples swallowed by monitor-restart outages.
    pub lost_in_restart: u64,
    /// Persistent clock jumps observed.
    pub clock_jumps: u64,
    /// Tracing-task crashes the supervisor recovered from (or died on).
    pub crashes: u64,
    /// Samples lost while the supervisor was backing off after crashes.
    pub lost_in_crash: u64,
    /// Silence gaps the detector censored (stream silent beyond the
    /// configured `max_silence`).
    pub gaps: u64,
    /// The censored spans themselves, `(from, until)` in trace seconds,
    /// in increasing order. Availability intervals overlapping these must
    /// be excluded from interval statistics, not counted as observed.
    pub censored_spans: Vec<(u64, u64)>,
    /// True if the supervisor exhausted its retries and gave up on this
    /// machine; the span from the last crash to the end of the trace is
    /// then censored (and appears in [`MachineQuality::censored_spans`]).
    pub gave_up: bool,
}

impl MachineQuality {
    /// A clean stream: no faults seen, nothing censored.
    pub fn is_clean(&self) -> bool {
        self.dropped == 0
            && self.duplicated == 0
            && self.delayed == 0
            && self.out_of_order == 0
            && self.restarts == 0
            && self.lost_in_restart == 0
            && self.clock_jumps == 0
            && self.crashes == 0
            && self.lost_in_crash == 0
            && self.gaps == 0
            && self.censored_spans.is_empty()
            && !self.gave_up
    }

    /// Total seconds of this machine's trace that are censored.
    pub fn censored_secs(&self) -> u64 {
        self.censored_spans
            .iter()
            .map(|(a, b)| b.saturating_sub(*a))
            .sum()
    }

    /// True if `[start, end)` overlaps any censored span.
    pub fn overlaps_censored(&self, start: u64, end: u64) -> bool {
        self.censored_spans
            .iter()
            .any(|&(a, b)| start < b && a < end)
    }
}

/// Quality accounting for a whole trace: per-machine stream quality plus
/// loader-level (file) damage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceQualityReport {
    /// Per-machine stream quality, keyed by machine id.
    pub machines: BTreeMap<u32, MachineQuality>,
    /// Trace-file lines that failed to parse and were skipped.
    pub corrupt_lines: u64,
    /// 1-based line numbers of the skipped lines (in file order).
    pub corrupt_line_numbers: Vec<usize>,
    /// Records that parsed and survived.
    pub parsed_records: u64,
}

impl TraceQualityReport {
    /// An empty report (what a clean pipeline produces).
    pub fn new() -> Self {
        TraceQualityReport::default()
    }

    /// The entry for one machine, creating it on first use.
    pub fn machine_mut(&mut self, id: u32) -> &mut MachineQuality {
        self.machines.entry(id).or_insert_with(|| MachineQuality {
            machine: id,
            ..Default::default()
        })
    }

    /// A perfectly clean trace: every stream clean, no file damage.
    pub fn is_clean(&self) -> bool {
        self.corrupt_lines == 0 && self.machines.values().all(MachineQuality::is_clean)
    }

    /// Fleet-wide sums, for drift reports and CI cross-checks.
    pub fn totals(&self) -> QualityTotals {
        let mut t = QualityTotals::default();
        for m in self.machines.values() {
            t.dropped += m.dropped;
            t.duplicated += m.duplicated;
            t.delayed += m.delayed;
            t.out_of_order += m.out_of_order;
            t.restarts += m.restarts;
            t.lost_in_restart += m.lost_in_restart;
            t.clock_jumps += m.clock_jumps;
            t.crashes += m.crashes;
            t.lost_in_crash += m.lost_in_crash;
            t.gaps += m.gaps;
            t.censored_spans += m.censored_spans.len() as u64;
            t.censored_secs += m.censored_secs();
            t.gave_up += m.gave_up as u64;
        }
        t.corrupt_lines = self.corrupt_lines;
        t.parsed_records = self.parsed_records;
        t
    }
}

/// Fleet-wide sums of [`MachineQuality`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QualityTotals {
    /// Sum of per-machine dropped samples.
    pub dropped: u64,
    /// Sum of per-machine duplicated samples.
    pub duplicated: u64,
    /// Sum of per-machine delayed samples.
    pub delayed: u64,
    /// Sum of per-machine out-of-order discards.
    pub out_of_order: u64,
    /// Sum of per-machine monitor restarts.
    pub restarts: u64,
    /// Sum of samples lost in restart outages.
    pub lost_in_restart: u64,
    /// Sum of per-machine clock jumps.
    pub clock_jumps: u64,
    /// Sum of per-machine tracer crashes.
    pub crashes: u64,
    /// Sum of samples lost during crash backoff.
    pub lost_in_crash: u64,
    /// Sum of per-machine censoring gaps.
    pub gaps: u64,
    /// Total number of censored spans.
    pub censored_spans: u64,
    /// Total censored seconds across the fleet.
    pub censored_secs: u64,
    /// How many machines the supervisor gave up on.
    pub gave_up: u64,
    /// Trace-file lines skipped as corrupt.
    pub corrupt_lines: u64,
    /// Records that parsed and survived.
    pub parsed_records: u64,
}

impl fmt::Display for TraceQualityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.totals();
        writeln!(
            f,
            "trace quality: {} machines, {} records parsed, {} corrupt lines skipped",
            self.machines.len(),
            t.parsed_records,
            t.corrupt_lines
        )?;
        writeln!(
            f,
            "  stream: {} dropped, {} duplicated, {} delayed, {} out-of-order, \
             {} restarts (-{} samples), {} clock jumps",
            t.dropped,
            t.duplicated,
            t.delayed,
            t.out_of_order,
            t.restarts,
            t.lost_in_restart,
            t.clock_jumps
        )?;
        write!(
            f,
            "  supervision: {} crashes (-{} samples), {} machines abandoned; \
             {} gaps censoring {} spans / {} s",
            t.crashes, t.lost_in_crash, t.gave_up, t.gaps, t.censored_spans, t.censored_secs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_report_is_clean() {
        let q = TraceQualityReport::new();
        assert!(q.is_clean());
        assert_eq!(q.totals(), QualityTotals::default());
    }

    #[test]
    fn any_fault_makes_it_dirty() {
        let mut q = TraceQualityReport::new();
        q.machine_mut(3).dropped = 1;
        assert!(!q.is_clean());
        assert_eq!(q.totals().dropped, 1);
        assert_eq!(q.machines[&3].machine, 3);

        let mut q = TraceQualityReport::new();
        q.corrupt_lines = 1;
        assert!(!q.is_clean());
    }

    #[test]
    fn censored_overlap_is_half_open() {
        let m = MachineQuality {
            censored_spans: vec![(100, 200), (500, 700)],
            ..Default::default()
        };
        assert!(m.overlaps_censored(150, 160));
        assert!(m.overlaps_censored(0, 101));
        assert!(
            !m.overlaps_censored(200, 500),
            "touching endpoints do not overlap"
        );
        assert!(m.overlaps_censored(199, 501));
        assert_eq!(m.censored_secs(), 300);
    }

    #[test]
    fn totals_sum_across_machines() {
        let mut q = TraceQualityReport::new();
        q.machine_mut(0).dropped = 2;
        q.machine_mut(1).dropped = 3;
        q.machine_mut(1).censored_spans = vec![(0, 10)];
        q.machine_mut(1).gave_up = true;
        let t = q.totals();
        assert_eq!(t.dropped, 5);
        assert_eq!(t.censored_spans, 1);
        assert_eq!(t.censored_secs, 10);
        assert_eq!(t.gave_up, 1);
        // Display stays panic-free and mentions the headline numbers.
        let s = q.to_string();
        assert!(s.contains("5 dropped"));
    }
}
