//! Trace-time calendar helpers.
//!
//! Testbed timestamps are seconds since the start of the trace. The
//! paper's analysis splits everything by weekday/weekend and by hour of
//! day; these helpers do that arithmetic in one place.

/// Seconds per day.
pub const SECS_PER_DAY: u64 = 86_400;

/// Seconds per hour.
pub const SECS_PER_HOUR: u64 = 3_600;

/// Day type, the paper's two analysis classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DayType {
    /// Monday–Friday.
    Weekday,
    /// Saturday–Sunday.
    Weekend,
}

impl std::fmt::Display for DayType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DayType::Weekday => f.write_str("weekday"),
            DayType::Weekend => f.write_str("weekend"),
        }
    }
}

/// Zero-based day index since trace start.
#[inline]
pub fn day_index(t: u64) -> u64 {
    t / SECS_PER_DAY
}

/// Hour of day, `0..24`.
#[inline]
pub fn hour_of_day(t: u64) -> u8 {
    ((t % SECS_PER_DAY) / SECS_PER_HOUR) as u8
}

/// Second within the day, `0..86400`.
#[inline]
pub fn sec_of_day(t: u64) -> u64 {
    t % SECS_PER_DAY
}

/// Day-of-week (0 = Monday … 6 = Sunday) given the weekday the trace
/// started on.
#[inline]
pub fn day_of_week(day: u64, start_weekday: u8) -> u8 {
    ((day + start_weekday as u64) % 7) as u8
}

/// Day type for a day index.
#[inline]
pub fn day_type(day: u64, start_weekday: u8) -> DayType {
    if day_of_week(day, start_weekday) >= 5 {
        DayType::Weekend
    } else {
        DayType::Weekday
    }
}

/// Day type of a timestamp.
#[inline]
pub fn day_type_at(t: u64, start_weekday: u8) -> DayType {
    day_type(day_index(t), start_weekday)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        assert_eq!(day_index(0), 0);
        assert_eq!(day_index(SECS_PER_DAY - 1), 0);
        assert_eq!(day_index(SECS_PER_DAY), 1);
        assert_eq!(hour_of_day(0), 0);
        assert_eq!(hour_of_day(3 * SECS_PER_HOUR + 59), 3);
        assert_eq!(hour_of_day(SECS_PER_DAY - 1), 23);
        assert_eq!(sec_of_day(SECS_PER_DAY + 5), 5);
    }

    #[test]
    fn weekday_cycle_from_monday() {
        // Start Monday: days 0–4 weekdays, 5–6 weekend, then repeat.
        for d in 0..5 {
            assert_eq!(day_type(d, 0), DayType::Weekday, "day {d}");
        }
        assert_eq!(day_type(5, 0), DayType::Weekend);
        assert_eq!(day_type(6, 0), DayType::Weekend);
        assert_eq!(day_type(7, 0), DayType::Weekday);
    }

    #[test]
    fn start_weekday_offset() {
        // Start Saturday (5): day 0 and 1 are weekend.
        assert_eq!(day_type(0, 5), DayType::Weekend);
        assert_eq!(day_type(1, 5), DayType::Weekend);
        assert_eq!(day_type(2, 5), DayType::Weekday);
    }

    #[test]
    fn day_type_at_timestamp() {
        assert_eq!(day_type_at(4 * SECS_PER_DAY + 100, 0), DayType::Weekday);
        assert_eq!(day_type_at(5 * SECS_PER_DAY + 100, 0), DayType::Weekend);
    }
}
