//! A minimal JSON reader/writer for the trace schema.
//!
//! The build environment has no crate registry, so the trace layer
//! cannot use `serde_json`. This module implements the small JSON subset
//! the JSONL trace format needs — flat objects of numbers, strings,
//! `null`, and one nested object — with the same wire format the
//! previous serde-derived implementation produced, so traces written by
//! older builds still parse.

use std::collections::BTreeMap;

/// A parsed JSON value (subset: no arrays — the trace schema has none).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any JSON number; kept as f64 plus the u64 view when exact.
    Num(f64),
    /// A string.
    Str(String),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Num(n) if n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON document. Returns an error message on malformed input
/// or trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

/// Replaces the value of top-level `key` in the JSON object document
/// `doc` with the raw JSON `value`, appending the key at the end when
/// absent. Every other byte of the document is preserved, including
/// key order. The experiment gate files are written by several
/// binaries, each owning one top-level section — a writer that assumed
/// its own key came last would silently delete every section spliced
/// in after it.
pub fn splice_key(doc: &str, key: &str, value: &str) -> Result<String, String> {
    let bytes = doc.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err("document is not a JSON object".into());
    }
    pos += 1;
    loop {
        skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b'}') => {
                // Key absent: insert before the closing brace.
                let body = doc[..pos].trim_end();
                let sep = if body.ends_with('{') { "" } else { "," };
                return Ok(format!("{body}{sep}\"{key}\":{value}}}\n"));
            }
            Some(b'"') => {}
            other => return Err(format!("expected a key or '}}', got {other:?}")),
        }
        let this_key = parse_str(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos += 1;
        skip_ws(bytes, &mut pos);
        let vstart = pos;
        parse_value(bytes, &mut pos)?;
        if this_key == key {
            return Ok(format!("{}{}{}", &doc[..vstart], value, &doc[pos..]));
        }
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) == Some(&b',') {
            pos += 1;
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'"') => parse_str(b, pos).map(Value::Str),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!(
            "unexpected character {:?} at byte {}",
            *c as char, *pos
        )),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the schema's strings are
                // plain identifiers, but stay correct for any input).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

/// Incremental writer for a flat JSON object, preserving field order.
#[derive(Debug, Default)]
pub struct ObjWriter {
    buf: String,
}

impl ObjWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjWriter {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    /// Writes an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Writes a float field (`{}` formatting round-trips f64 exactly).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&format!("{v}"));
        self
    }

    /// Writes an optional unsigned integer field (`null` for `None`).
    pub fn opt_u64(&mut self, k: &str, v: Option<u64>) -> &mut Self {
        self.key(k);
        match v {
            Some(x) => self.buf.push_str(&x.to_string()),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Writes a string field (the schema's strings need no escaping, but
    /// quotes and backslashes are escaped anyway).
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        for c in v.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
        self
    }

    /// Writes a nested object field from a finished writer.
    pub fn obj(&mut self, k: &str, v: ObjWriter) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.finish());
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_matches_serde_wire_format() {
        let mut th = ObjWriter::new();
        th.f64("th1", 0.2).f64("th2", 0.6);
        let mut w = ObjWriter::new();
        w.u64("seed", 7).obj("thresholds", th);
        assert_eq!(
            w.finish(),
            r#"{"seed":7,"thresholds":{"th1":0.2,"th2":0.6}}"#
        );
    }

    #[test]
    fn parses_numbers_strings_null() {
        let v = parse(r#"{"a":1,"b":-2.5e3,"c":"CpuContention","d":null,"e":true}"#).unwrap();
        let o = v.as_obj().unwrap();
        assert_eq!(o["a"].as_u64(), Some(1));
        assert_eq!(o["b"].as_f64(), Some(-2500.0));
        assert_eq!(o["c"].as_str(), Some("CpuContention"));
        assert_eq!(o["d"], Value::Null);
        assert_eq!(o["e"], Value::Bool(true));
    }

    #[test]
    fn rejects_garbage_and_trailing() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("{\"a\"").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn float_round_trip() {
        for x in [0.83, 1.0 / 3.0, 1e-12, 123456.789] {
            let mut w = ObjWriter::new();
            w.f64("x", x);
            let v = parse(&w.finish()).unwrap();
            assert_eq!(v.as_obj().unwrap()["x"].as_f64(), Some(x));
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut w = ObjWriter::new();
        w.str("s", "a\"b\\c\nd");
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.as_obj().unwrap()["s"].as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn splice_replaces_a_middle_key_and_keeps_the_rest() {
        let doc = r#"{"a":1,"cluster":{"old":true},"sched":{"kept":2}}"#;
        let out = splice_key(doc, "cluster", r#"{"new":3}"#).unwrap();
        assert_eq!(out, r#"{"a":1,"cluster":{"new":3},"sched":{"kept":2}}"#);
    }

    #[test]
    fn splice_appends_a_missing_key() {
        let out = splice_key("{\"a\":1}\n", "sched", "{}").unwrap();
        assert_eq!(out, "{\"a\":1,\"sched\":{}}\n");
        let out = splice_key("{}", "sched", "{\"x\":1}").unwrap();
        assert_eq!(out, "{\"sched\":{\"x\":1}}\n");
    }

    #[test]
    fn splice_is_not_fooled_by_braces_inside_strings() {
        let doc = r#"{"description":"a } inside { a string","cluster":{"v":1}}"#;
        let out = splice_key(doc, "cluster", r#"{"v":2}"#).unwrap();
        assert_eq!(
            out,
            r#"{"description":"a } inside { a string","cluster":{"v":2}}"#
        );
    }

    #[test]
    fn splice_rejects_a_non_object_document() {
        assert!(splice_key("[1,2]", "k", "{}").is_err());
        assert!(splice_key("", "k", "{}").is_err());
    }
}
