//! Raw monitor-sample traces.
//!
//! The event trace of [`crate::trace`] is a *derived* artifact: the real
//! iShare monitor first logs raw periodic samples (`vmstat` output) and
//! the unavailability occurrences are distilled from them. This module
//! is that lower layer: a compact on-disk format for per-machine
//! `(t, host_load, resident_mb, alive)` series, plus [`derive_events`],
//! which replays a stored series through the §4 detector — so archived
//! raw logs can be (re-)analyzed under any threshold configuration, not
//! just the one that was live at collection time.

use std::io::{BufRead, Write};

use fgcs_core::detector::{Detector, DetectorConfig, EventEdge};
use fgcs_core::monitor::Observation;

use crate::lab::LoadSample;
use crate::trace::{TraceError, TraceRecord};

/// A stored raw-sample series for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSeries {
    /// Machine id.
    pub machine: u32,
    /// Sampling period, seconds.
    pub sample_period: u64,
    /// The samples, time-ordered.
    pub samples: Vec<LoadSample>,
}

impl LoadSeries {
    /// Collects the series a machine's monitor would log over the whole
    /// trace span of `cfg`.
    pub fn collect(cfg: &crate::lab::LabConfig, machine: usize) -> LoadSeries {
        let plan = crate::lab::MachinePlan::generate(cfg, machine);
        LoadSeries {
            machine: machine as u32,
            sample_period: cfg.sample_period,
            samples: plan.samples().collect(),
        }
    }

    /// Writes the series as CSV: header, then
    /// `t,load_millis,resident_mb,alive` rows (load quantized to 0.1% —
    /// the precision `vmstat` output actually carries).
    pub fn write_csv<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        writeln!(
            w,
            "# machine={} sample_period={}",
            self.machine, self.sample_period
        )?;
        writeln!(w, "t,load_millis,resident_mb,alive")?;
        for s in &self.samples {
            writeln!(
                w,
                "{},{},{},{}",
                s.t,
                (s.host_load * 1000.0).round() as u32,
                s.host_resident_mb,
                u8::from(s.alive),
            )?;
        }
        Ok(())
    }

    /// Reads a series written by [`LoadSeries::write_csv`].
    pub fn read_csv<R: BufRead>(r: R) -> Result<LoadSeries, TraceError> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| TraceError::Parse("empty load trace".into()))??;
        let mut machine = None;
        let mut period = None;
        for token in header.trim_start_matches('#').split_whitespace() {
            if let Some(v) = token.strip_prefix("machine=") {
                machine = v.parse::<u32>().ok();
            }
            if let Some(v) = token.strip_prefix("sample_period=") {
                period = v.parse::<u64>().ok();
            }
        }
        let machine =
            machine.ok_or_else(|| TraceError::Parse("missing machine= in header".into()))?;
        let sample_period =
            period.ok_or_else(|| TraceError::Parse("missing sample_period= in header".into()))?;

        let mut samples = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line?;
            if i == 0 || line.trim().is_empty() {
                continue; // column header
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 4 {
                return Err(TraceError::Parse(format!(
                    "line {}: expected 4 fields",
                    i + 2
                )));
            }
            let parse = |s: &str, what: &str| -> Result<u64, TraceError> {
                s.parse::<u64>()
                    .map_err(|e| TraceError::Parse(format!("line {}: {what}: {e}", i + 2)))
            };
            samples.push(LoadSample {
                t: parse(fields[0], "t")?,
                host_load: parse(fields[1], "load_millis")? as f64 / 1000.0,
                host_resident_mb: parse(fields[2], "resident_mb")? as u32,
                alive: parse(fields[3], "alive")? != 0,
            });
        }
        Ok(LoadSeries {
            machine,
            sample_period,
            samples,
        })
    }

    /// The samples quantized the way [`LoadSeries::write_csv`] stores
    /// them (for round-trip comparisons).
    pub fn quantized(&self) -> LoadSeries {
        LoadSeries {
            machine: self.machine,
            sample_period: self.sample_period,
            samples: self
                .samples
                .iter()
                .map(|s| LoadSample {
                    host_load: (s.host_load * 1000.0).round() / 1000.0,
                    ..*s
                })
                .collect(),
        }
    }
}

/// Replays a stored series through the detector, producing the event
/// records the live tracer would have recorded — the offline analysis
/// path for archived monitor logs. `phys_mem_mb`/`kernel_mem_mb` convert
/// resident sizes into guest-available memory, exactly as the runner
/// does.
pub fn derive_events(
    series: &LoadSeries,
    detector_cfg: DetectorConfig,
    phys_mem_mb: u32,
    kernel_mem_mb: u32,
) -> Vec<TraceRecord> {
    let mut detector = Detector::new(detector_cfg);
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut open: Option<usize> = None;
    let mut avail_cpu_sum = 0.0;
    let mut avail_mem_sum = 0.0;
    let mut avail_samples = 0u64;

    for s in &series.samples {
        let free = phys_mem_mb
            .saturating_sub(kernel_mem_mb)
            .saturating_sub(s.host_resident_mb);
        let obs = if s.alive {
            Observation {
                host_load: s.host_load,
                free_mem_mb: free,
                alive: true,
            }
        } else {
            Observation::dead()
        };
        if detector.is_available() && s.alive {
            avail_cpu_sum += 1.0 - s.host_load;
            avail_mem_sum += free as f64;
            avail_samples += 1;
        }
        let step = detector.observe(s.t, &obs);
        for edge in step.edges {
            match edge {
                EventEdge::Started { cause, at } => {
                    let n = avail_samples.max(1) as f64;
                    records.push(TraceRecord {
                        machine: series.machine,
                        cause,
                        start: at,
                        end: None,
                        raw_end: None,
                        avail_cpu: avail_cpu_sum / n,
                        avail_mem_mb: (avail_mem_sum / n) as u32,
                    });
                    open = Some(records.len() - 1);
                    avail_cpu_sum = 0.0;
                    avail_mem_sum = 0.0;
                    avail_samples = 0;
                }
                EventEdge::Ended { at, calm_from, .. } => {
                    let idx = open.take().expect("Ended without open record");
                    records[idx].end = Some(at);
                    records[idx].raw_end = Some(calm_from.max(records[idx].start));
                }
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;
    use crate::runner::{trace_machine, TestbedConfig};

    fn tiny_series() -> LoadSeries {
        let mut cfg = LabConfig::tiny();
        cfg.days = 2;
        LoadSeries::collect(&cfg, 0)
    }

    #[test]
    fn csv_round_trip_is_lossless_after_quantization() {
        let series = tiny_series();
        let mut buf = Vec::new();
        series.write_csv(&mut buf).unwrap();
        let back = LoadSeries::read_csv(&buf[..]).unwrap();
        assert_eq!(back, series.quantized());
        assert_eq!(back.machine, 0);
        assert_eq!(back.sample_period, 15);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(LoadSeries::read_csv(&b""[..]).is_err());
        assert!(
            LoadSeries::read_csv(&b"# no keys\nt,load_millis,resident_mb,alive\n"[..]).is_err()
        );
        let bad = "# machine=0 sample_period=15\nt,load_millis,resident_mb,alive\n1,2\n";
        assert!(LoadSeries::read_csv(bad.as_bytes()).is_err());
    }

    #[test]
    fn derived_events_match_the_live_tracer() {
        // The offline path (stored raw series -> detector) must produce
        // exactly the records the live runner produced.
        let cfg = TestbedConfig::tiny();
        let live = trace_machine(&cfg, 1);
        let series = LoadSeries::collect(&cfg.lab, 1);
        let derived = derive_events(
            &series,
            cfg.detector,
            cfg.lab.phys_mem_mb,
            cfg.lab.kernel_mem_mb,
        );
        assert_eq!(derived, live);
    }

    #[test]
    fn reanalysis_with_different_thresholds_changes_events() {
        // The point of keeping raw logs: re-derive events under other
        // thresholds without re-collecting.
        let cfg = TestbedConfig::tiny();
        let series = LoadSeries::collect(&cfg.lab, 0);
        let baseline = derive_events(
            &series,
            cfg.detector,
            cfg.lab.phys_mem_mb,
            cfg.lab.kernel_mem_mb,
        );
        let mut strict = cfg.detector;
        strict.thresholds = fgcs_core::model::Thresholds::new(0.05, 0.12);
        let stricter = derive_events(&series, strict, cfg.lab.phys_mem_mb, cfg.lab.kernel_mem_mb);
        // A lower Th2 yields strictly more unavailable time (events may
        // merge, so compare durations rather than counts).
        let span = cfg.lab.span_secs();
        let unavailable = |recs: &[TraceRecord]| -> u64 {
            recs.iter().map(|r| r.end.unwrap_or(span) - r.start).sum()
        };
        assert!(
            unavailable(&stricter) > unavailable(&baseline),
            "lower Th2 must find more unavailability: {} vs {}",
            unavailable(&stricter),
            unavailable(&baseline)
        );
    }

    #[test]
    fn quantization_error_is_bounded() {
        let series = tiny_series();
        let q = series.quantized();
        for (a, b) in series.samples.iter().zip(&q.samples) {
            assert!((a.host_load - b.host_load).abs() <= 0.0005);
        }
    }
}
