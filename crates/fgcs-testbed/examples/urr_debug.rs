//! Dev tool: URR raw-duration histogram.
use fgcs_core::model::FailureCause;
use fgcs_testbed::runner::{run_testbed, TestbedConfig};

fn main() {
    let trace = run_testbed(&TestbedConfig::default());
    let mut durs: Vec<u64> = trace
        .records
        .iter()
        .filter(|r| r.cause == FailureCause::Revocation)
        .filter_map(|r| r.raw_duration())
        .collect();
    durs.sort_unstable();
    println!("n={} durations: {:?}", durs.len(), durs);
}
