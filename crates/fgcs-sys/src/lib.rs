//! Minimal Linux syscall shim for the epoll readiness-loop backend.
//!
//! The build environment has no crate registry, so `fgcs-service`
//! cannot pull in `libc`/`mio`. This crate binds the handful of
//! syscalls the event loop needs — `epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `fcntl` (for `O_NONBLOCK`), `accept4`, `eventfd`
//! (cross-loop wakeups), and raw `socket`/`setsockopt`/`bind`/`listen`
//! (`SO_REUSEADDR`/`SO_REUSEPORT` listeners) — directly
//! via `extern "C"` declarations against the C library the binary
//! already links, and wraps them in safe, RAII-owning types.
//!
//! Every other crate in the workspace keeps `#![forbid(unsafe_code)]`;
//! all `unsafe` lives here, behind wrappers whose contracts are plain
//! `std::io` ones (owned fds, `io::Result`, EINTR retried).
//!
//! Only compiled on Linux; on other targets the crate is empty and the
//! service falls back to the threaded backend.

#![warn(missing_docs)]

#[cfg(target_os = "linux")]
mod linux;

#[cfg(target_os = "linux")]
pub use linux::*;
