//! The actual bindings and safe wrappers (Linux only).

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::os::raw::{c_int, c_void};

// ---------------------------------------------------------------------------
// Raw bindings
// ---------------------------------------------------------------------------

/// Readiness flag: the fd is readable (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Readiness flag: the fd is writable (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Readiness flag: error condition (`EPOLLERR`; always reported).
pub const EPOLLERR: u32 = 0x008;
/// Readiness flag: hangup (`EPOLLHUP`; always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Readiness flag: peer shut down its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;

/// One `struct epoll_event`. On x86-64 the kernel ABI packs this to 12
/// bytes; other architectures use natural alignment. The fields are
/// private (taking references into a packed struct is unsound); use
/// [`EpollEvent::readiness`] and [`EpollEvent::token`].
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// A zeroed event, for filling wait buffers.
    pub fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }

    /// The readiness bits the kernel reported (`EPOLL*` flags).
    pub fn readiness(&self) -> u32 {
        self.events
    }

    /// The caller-chosen token registered with the fd.
    pub fn token(&self) -> u64 {
        self.data
    }
}

const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_ERROR: c_int = 4;
const SO_REUSEPORT: c_int = 15;

const EINPROGRESS: i32 = 115;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// `struct sockaddr_in` (network byte order for port and address).
#[repr(C)]
struct SockaddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// `struct sockaddr_in6`.
#[repr(C)]
struct SockaddrIn6 {
    sin6_family: u16,
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    fn accept4(sockfd: c_int, addr: *mut c_void, addrlen: *mut u32, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(fd: c_int, level: c_int, name: c_int, value: *const c_void, len: u32) -> c_int;
    fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    fn getsockopt(fd: c_int, level: c_int, name: c_int, value: *mut c_void, len: *mut u32)
        -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------------
// Safe wrappers
// ---------------------------------------------------------------------------

/// An owned epoll instance. The fd is closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers involved; the returned fd is owned here.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` for the `interest` readiness bits, tagged `token`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest set / token of a registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Unregisters an fd.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // Pre-2.6.9 kernels demanded a non-null event even for DEL;
        // passing one is harmless everywhere.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (-1 = forever) for readiness, filling
    /// `events` from the front. Returns how many events arrived.
    /// Retries on `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let max = events.len().min(c_int::MAX as usize) as c_int;
        if max == 0 {
            return Ok(0);
        }
        loop {
            // SAFETY: `events` is a valid, writable buffer of `max`
            // `EpollEvent`s for the duration of the call.
            match cvt(unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) }) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        let _ = unsafe { close(self.fd) };
    }
}

/// Sets or clears `O_NONBLOCK` on any fd via `fcntl`.
pub fn set_nonblocking(fd: RawFd, nonblocking: bool) -> io::Result<()> {
    // SAFETY: F_GETFL/F_SETFL take no pointers.
    let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
    let want = if nonblocking {
        flags | O_NONBLOCK
    } else {
        flags & !O_NONBLOCK
    };
    if want != flags {
        cvt(unsafe { fcntl(fd, F_SETFL, want) })?;
    }
    Ok(())
}

/// Accepts one pending connection from a (nonblocking) listener via
/// `accept4`, returning the stream already `SOCK_NONBLOCK | CLOEXEC`.
/// `Ok(None)` means no connection is pending (`EAGAIN`/`EWOULDBLOCK`);
/// `EINTR` and the transient `ECONNABORTED` are retried internally.
pub fn accept_nonblocking(listener: &TcpListener) -> io::Result<Option<TcpStream>> {
    const ECONNABORTED: i32 = 103;
    loop {
        // SAFETY: null addr/addrlen is allowed (peer address not
        // wanted); on success the fd is fresh and owned by the new
        // TcpStream exactly once.
        let ret = unsafe {
            accept4(
                listener.as_raw_fd(),
                std::ptr::null_mut(),
                std::ptr::null_mut(),
                SOCK_NONBLOCK | SOCK_CLOEXEC,
            )
        };
        if ret >= 0 {
            // SAFETY: `ret` is a valid socket fd we exclusively own.
            return Ok(Some(unsafe { TcpStream::from_raw_fd(ret) }));
        }
        let e = io::Error::last_os_error();
        match e.kind() {
            io::ErrorKind::WouldBlock => return Ok(None),
            io::ErrorKind::Interrupted => continue,
            _ if e.raw_os_error() == Some(ECONNABORTED) => continue,
            _ => return Err(e),
        }
    }
}

/// Binds a TCP listener with `SO_REUSEADDR` set before `bind`, so a
/// restarted server can re-bind its previous address immediately —
/// without the option, the listening socket's lingering `TIME_WAIT`
/// children block the rebind for up to a minute, which is exactly the
/// window a crash-restarted `fgcs-serve` needs to come back in.
/// (`std::net::TcpListener::bind` offers no hook between `socket()` and
/// `bind()`, hence the raw calls.) The returned listener is in blocking
/// mode with `CLOEXEC` set, like a std-bound one.
pub fn listen_reusable(addr: &std::net::SocketAddr) -> io::Result<TcpListener> {
    listen_with(addr, false)
}

/// Binds a TCP listener with both `SO_REUSEADDR` and `SO_REUSEPORT`
/// set before `bind`. Any number of listeners bound this way to the
/// same address share it, and the kernel load-balances incoming
/// connections across them by 4-tuple hash — the accept-sharing
/// primitive behind the multi-loop epoll backend. All sharers must set
/// the option before binding, including the first.
pub fn listen_reuseport(addr: &std::net::SocketAddr) -> io::Result<TcpListener> {
    listen_with(addr, true)
}

/// Binds a TCP listener with `SO_REUSEADDR` and an explicit accept
/// backlog. With a tiny backlog and an owner that never calls
/// `accept`, further SYNs are left unanswered — tests use this as a
/// "never-accepting" peer that makes client connects hang, exercising
/// connect-deadline paths.
pub fn listen_backlog(addr: &std::net::SocketAddr, backlog: i32) -> io::Result<TcpListener> {
    listen_with_backlog(addr, false, backlog)
}

fn listen_with(addr: &std::net::SocketAddr, reuse_port: bool) -> io::Result<TcpListener> {
    // 128 matches std's listen backlog.
    listen_with_backlog(addr, reuse_port, 128)
}

fn listen_with_backlog(
    addr: &std::net::SocketAddr,
    reuse_port: bool,
    backlog: i32,
) -> io::Result<TcpListener> {
    let domain = match addr {
        std::net::SocketAddr::V4(_) => AF_INET,
        std::net::SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: no pointers; on success the fd is exclusively owned here
    // (and below, wrapped in OwnedFd-like manual close on error paths).
    let fd = cvt(unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
    let close_on_err = |e: io::Error| -> io::Error {
        // SAFETY: fd is owned and not yet wrapped; closed exactly once.
        let _ = unsafe { close(fd) };
        e
    };
    let one: c_int = 1;
    let mut opts = vec![SO_REUSEADDR];
    if reuse_port {
        opts.push(SO_REUSEPORT);
    }
    for opt in opts {
        // SAFETY: `one` outlives the call; the kernel copies 4 bytes.
        cvt(unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                &one as *const c_int as *const c_void,
                std::mem::size_of::<c_int>() as u32,
            )
        })
        .map_err(close_on_err)?;
    }
    let ret = with_sockaddr(addr, |sa, len| {
        // SAFETY: `sa` points at a properly laid-out sockaddr living
        // across the call (see `with_sockaddr`).
        unsafe { bind(fd, sa, len) }
    });
    cvt(ret).map_err(close_on_err)?;
    cvt(unsafe { listen(fd, backlog) }).map_err(close_on_err)?;
    // SAFETY: `fd` is a listening socket we exclusively own.
    Ok(unsafe { TcpListener::from_raw_fd(fd) })
}

/// Builds the C sockaddr for `addr` on the stack and hands its pointer
/// and length to `f` — the shared tail of `bind` and `connect`.
fn with_sockaddr<R>(addr: &std::net::SocketAddr, f: impl FnOnce(*const c_void, u32) -> R) -> R {
    match addr {
        std::net::SocketAddr::V4(a) => {
            let sa = SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: a.port().to_be(),
                sin_addr: u32::from_ne_bytes(a.ip().octets()),
                sin_zero: [0; 8],
            };
            f(
                &sa as *const SockaddrIn as *const c_void,
                std::mem::size_of::<SockaddrIn>() as u32,
            )
        }
        std::net::SocketAddr::V6(a) => {
            let sa = SockaddrIn6 {
                sin6_family: AF_INET6 as u16,
                sin6_port: a.port().to_be(),
                sin6_flowinfo: a.flowinfo().to_be(),
                sin6_addr: a.ip().octets(),
                sin6_scope_id: a.scope_id(),
            };
            f(
                &sa as *const SockaddrIn6 as *const c_void,
                std::mem::size_of::<SockaddrIn6>() as u32,
            )
        }
    }
}

/// Starts a nonblocking TCP connect. Returns the in-progress stream and
/// whether the connect already completed (loopback connects often do).
/// When `false`, the caller must wait for `EPOLLOUT` readiness and then
/// check [`take_socket_error`] to learn the outcome — and apply its own
/// deadline, because a peer that never answers (full accept backlog,
/// SIGSTOPped server) leaves the socket in SYN-retry limbo for minutes.
pub fn connect_nonblocking(addr: &std::net::SocketAddr) -> io::Result<(TcpStream, bool)> {
    let domain = match addr {
        std::net::SocketAddr::V4(_) => AF_INET,
        std::net::SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: no pointers; on success the fd is exclusively owned here.
    let fd = cvt(unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    let close_on_err = |e: io::Error| -> io::Error {
        // SAFETY: fd is owned and not yet wrapped; closed exactly once.
        let _ = unsafe { close(fd) };
        e
    };
    let ret = with_sockaddr(addr, |sa, len| {
        // SAFETY: `sa` is a valid sockaddr for the duration of the call.
        unsafe { connect(fd, sa, len) }
    });
    let done = if ret >= 0 {
        true
    } else {
        let e = io::Error::last_os_error();
        if e.raw_os_error() == Some(EINPROGRESS) {
            false
        } else {
            return Err(close_on_err(e));
        }
    };
    // SAFETY: `fd` is a socket we exclusively own.
    Ok((unsafe { TcpStream::from_raw_fd(fd) }, done))
}

/// Reads and clears a socket's pending error (`SO_ERROR`) — how a
/// nonblocking connect reports its outcome once the socket turns
/// writable. `Ok(None)` means the connect succeeded.
pub fn take_socket_error(fd: RawFd) -> io::Result<Option<io::Error>> {
    let mut err: c_int = 0;
    let mut len = std::mem::size_of::<c_int>() as u32;
    // SAFETY: `err`/`len` are valid for the call; the kernel writes at
    // most 4 bytes.
    cvt(unsafe {
        getsockopt(
            fd,
            SOL_SOCKET,
            SO_ERROR,
            &mut err as *mut c_int as *mut c_void,
            &mut len,
        )
    })?;
    if err == 0 {
        Ok(None)
    } else {
        Ok(Some(io::Error::from_raw_os_error(err)))
    }
}

/// An owned `eventfd(2)` — the cheapest cross-thread wakeup that an
/// epoll loop can watch. One thread calls [`EventFd::signal`]; the loop
/// has the fd registered for `EPOLLIN`, wakes from `epoll_wait`, and
/// calls [`EventFd::drain`] to reset it. The fd is nonblocking and
/// `CLOEXEC`; the kernel coalesces pending signals into one counter, so
/// any number of signals cost exactly one wakeup.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: no pointers involved; the returned fd is owned here.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the counter, making the fd readable. A saturated
    /// counter (`EAGAIN`) already guarantees a pending wakeup, so it is
    /// treated as success; `EINTR` is retried.
    pub fn signal(&self) {
        let one: u64 = 1;
        loop {
            // SAFETY: `one` is 8 valid bytes for the duration of the call.
            let ret = unsafe { write(self.fd, &one as *const u64 as *const c_void, 8) };
            if ret >= 0 {
                return;
            }
            let e = io::Error::last_os_error();
            match e.kind() {
                io::ErrorKind::Interrupted => continue,
                _ => return, // EAGAIN: counter saturated, wakeup pending
            }
        }
    }

    /// Resets the counter to 0 (consumes all pending signals). Safe to
    /// call when no signal is pending.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        loop {
            // SAFETY: `buf` is 8 writable bytes for the call.
            let ret = unsafe { read(self.fd, &mut buf as *mut u64 as *mut c_void, 8) };
            if ret >= 0 {
                return;
            }
            let e = io::Error::last_os_error();
            match e.kind() {
                io::ErrorKind::Interrupted => continue,
                _ => return, // EAGAIN: already drained
            }
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        let _ = unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn epoll_event_matches_kernel_abi_size() {
        let size = std::mem::size_of::<EpollEvent>();
        if cfg!(target_arch = "x86_64") {
            assert_eq!(size, 12, "x86-64 epoll_event is packed to 12 bytes");
        } else {
            assert_eq!(size, 16);
        }
    }

    #[test]
    fn listener_readiness_and_accept4() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = vec![EpollEvent::zeroed(); 8];
        // Nothing pending yet: a zero-timeout wait reports no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        assert!(accept_nonblocking(&listener).unwrap().is_none());

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = ep.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        let accepted = accept_nonblocking(&listener).unwrap().expect("pending");

        // The accepted socket is nonblocking: an immediate read would
        // block, so it must error with WouldBlock instead.
        let mut byte = [0u8; 1];
        let err = (&accepted).read(&mut byte).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);

        // Data readiness flows through a registered conn fd.
        ep.add(accepted.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 9)
            .unwrap();
        client.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 9);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);
        assert_eq!((&accepted).read(&mut byte).unwrap(), 1);
        assert_eq!(byte[0], b'x');

        // modify + delete round-trip.
        ep.modify(accepted.as_raw_fd(), EPOLLIN | EPOLLOUT, 11)
            .unwrap();
        let n = ep.wait(&mut events, 2_000).unwrap();
        assert!(n >= 1);
        assert_eq!(events[0].token(), 11);
        assert_ne!(events[0].readiness() & EPOLLOUT, 0);
        ep.delete(accepted.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn listen_reusable_rebinds_after_a_served_connection() {
        // First life: serve one connection, then die with it open (the
        // server replies and closes first, putting ITS side in
        // TIME_WAIT — the case that blocks a plain rebind).
        let l1 = listen_reusable(&"127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = l1.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut served, _) = l1.accept().unwrap();
        served.write_all(b"hi").unwrap();
        drop(served); // server closes first
        let mut buf = [0u8; 2];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        drop(l1);
        // Second life: the same port binds again immediately.
        let l2 = listen_reusable(&addr).unwrap();
        assert_eq!(l2.local_addr().unwrap(), addr);
        let _c2 = TcpStream::connect(addr).unwrap();
        assert!(l2.accept().is_ok());
        // IPv6 path compiles and binds too.
        let l6 = listen_reusable(&"[::1]:0".parse().unwrap()).unwrap();
        assert!(l6.local_addr().unwrap().is_ipv6());
    }

    #[test]
    fn reuseport_listeners_share_a_port_and_both_accept() {
        let l1 = listen_reuseport(&"127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = l1.local_addr().unwrap();
        // Second listener on the SAME concrete port succeeds only with
        // SO_REUSEPORT on both sockets.
        let l2 = listen_reuseport(&addr).unwrap();
        assert_eq!(l2.local_addr().unwrap(), addr);
        // Without the option, the same bind fails.
        assert!(listen_reusable(&addr).is_err());

        // Connections land on one of the sharers; drive enough that the
        // accept below always finds its own. Each connect is matched to
        // whichever listener reports readiness.
        l1.set_nonblocking(true).unwrap();
        l2.set_nonblocking(true).unwrap();
        let mut clients = Vec::new();
        let mut accepted = 0;
        for _ in 0..8 {
            clients.push(TcpStream::connect(addr).unwrap());
        }
        // Accept everything pending on either listener.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while accepted < clients.len() && std::time::Instant::now() < deadline {
            for l in [&l1, &l2] {
                while accept_nonblocking(l).unwrap().is_some() {
                    accepted += 1;
                }
            }
        }
        assert_eq!(accepted, clients.len());
    }

    #[test]
    fn eventfd_wakes_an_epoll_wait_and_drains() {
        let efd = EventFd::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(efd.fd(), EPOLLIN, 42).unwrap();
        let mut events = vec![EpollEvent::zeroed(); 4];

        // Unsignalled: not readable.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // Signals coalesce: three signals, one readable event.
        efd.signal();
        efd.signal();
        efd.signal();
        let n = ep.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        // Drain resets; the fd goes quiet again (level-triggered, so a
        // non-drained counter would keep reporting readiness).
        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // Signal from another thread wakes a blocking wait.
        let efd = std::sync::Arc::new(efd);
        let efd2 = efd.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            efd2.signal();
        });
        let n = ep.wait(&mut events, 5_000).unwrap();
        assert_eq!(n, 1);
        efd.drain();
        t.join().unwrap();
    }

    #[test]
    fn connect_nonblocking_completes_and_reports_via_so_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (stream, done) = connect_nonblocking(&addr).unwrap();
        if !done {
            // Wait for writability, then the socket error must be clear.
            let ep = Epoll::new().unwrap();
            ep.add(stream.as_raw_fd(), EPOLLOUT, 1).unwrap();
            let mut events = vec![EpollEvent::zeroed(); 4];
            assert!(ep.wait(&mut events, 2_000).unwrap() >= 1);
        }
        assert!(take_socket_error(stream.as_raw_fd()).unwrap().is_none());
        assert!(listener.accept().is_ok());

        // A refused connect (closed port) surfaces through SO_ERROR.
        drop(listener);
        let (stream, done) = connect_nonblocking(&addr).unwrap();
        if !done {
            let ep = Epoll::new().unwrap();
            ep.add(stream.as_raw_fd(), EPOLLOUT, 1).unwrap();
            let mut events = vec![EpollEvent::zeroed(); 4];
            assert!(ep.wait(&mut events, 2_000).unwrap() >= 1);
            let err = take_socket_error(stream.as_raw_fd())
                .unwrap()
                .expect("refused");
            assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        }
    }

    #[test]
    fn listen_backlog_binds_and_serves() {
        let l = listen_backlog(&"127.0.0.1:0".parse().unwrap(), 1).unwrap();
        let addr = l.local_addr().unwrap();
        let _c = TcpStream::connect(addr).unwrap();
        assert!(l.accept().is_ok());
    }

    #[test]
    fn set_nonblocking_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let fd = listener.as_raw_fd();
        set_nonblocking(fd, true).unwrap();
        assert!(accept_nonblocking(&listener).unwrap().is_none());
        set_nonblocking(fd, false).unwrap();
        // Back to blocking: verify via the std accessor on a connect.
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        assert!(listener.accept().is_ok());
    }
}
