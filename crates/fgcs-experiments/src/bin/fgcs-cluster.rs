//! `fgcs-cluster` — X13: kill-primary automatic failover under live
//! replayed load.
//!
//! Boots a 2-shard cluster as real `fgcs-serve` processes (one primary
//! + one replication follower per shard, machine ids owned by
//! rendezvous hashing), replays a deterministic availability wave
//! through the fault-hardened [`ClusterClient`] router in three phases,
//! and SIGKILLs shard 0's primary between the first and second phase:
//!
//! 1. **before** — both primaries healthy; baseline ingest throughput
//!    and query latency through the router.
//! 2. **during** — shard 0's primary is killed (`SIGKILL`, no graceful
//!    anything, and **no operator step**): the follower's pull loop
//!    detects the silence — consecutive missed pulls plus an expired
//!    lease (DESIGN.md §13.5) — and self-promotes at a fresh epoch;
//!    the router rides out the dead endpoint with retries, fails over
//!    to the self-promoted follower, and resumes the interrupted
//!    stream via the strictly-`t > last_t` replay protocol.
//! 3. **after** — steady state on the promoted topology.
//!
//! The run asserts the tentpole claim end to end: detection +
//! self-promotion lands in bounded time (`failover_promote_ms`), zero
//! records lost up to the acked replication seq, and the cluster's
//! final per-machine transition records bit-identical to an unkilled
//! single-server reference fed the same trace. Reads route through the
//! follower endpoints (`follower_reads` counts them). Writes
//! `results/serve_cluster.csv` and splices a flat `"cluster"` gate
//! object into `BENCH_serve.json` (both cwd-relative), which
//! `scripts/ci.sh` checks.
//!
//! ```text
//! fgcs-cluster [--quick]
//! ```
//!
//! Requires the sibling `fgcs-serve` binary (built by
//! `cargo build --release --workspace`).

#[cfg(target_os = "linux")]
mod imp {
    use std::io::{BufRead, BufReader};
    use std::path::{Path, PathBuf};
    use std::process::{Child, ChildStdin, Command, Stdio};
    use std::time::{Duration, Instant};

    use fgcs_service::cluster::{ClusterClient, ClusterConfig, ShardSpec};
    use fgcs_service::{Backend, ClientConfig, Server, ServiceClient, ServiceConfig};
    use fgcs_stats::quantile::quantiles;
    use fgcs_testbed::json::ObjWriter;
    use fgcs_wire::{ErrorCode, Frame, SampleLoad, WireSample, WireTransition};

    /// Sample spacing of the replay wave, seconds.
    const STEP: u64 = 15;

    /// One `fgcs-serve` child plus the plumbing that controls its life:
    /// it serves until its stdin reaches EOF, so dropping `stdin` is a
    /// graceful shutdown and `Child::kill` is the SIGKILL under test.
    struct Node {
        child: Child,
        addr: String,
        stdin: Option<ChildStdin>,
    }

    impl Node {
        fn spawn(serve_bin: &Path, args: &[String]) -> Node {
            let mut child = Command::new(serve_bin)
                .args(args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .unwrap_or_else(|e| panic!("spawn {}: {e}", serve_bin.display()));
            let stdin = child.stdin.take();
            let stdout = child.stdout.take().expect("child stdout piped");
            let mut line = String::new();
            BufReader::new(stdout)
                .read_line(&mut line)
                .expect("read fgcs-serve banner");
            let addr = line
                .strip_prefix("listening on ")
                .unwrap_or_else(|| panic!("unexpected fgcs-serve banner: {line:?}"))
                .trim()
                .to_string();
            Node { child, addr, stdin }
        }

        /// Graceful shutdown: EOF on stdin, then reap.
        fn shutdown(mut self) {
            drop(self.stdin.take());
            let _ = self.child.wait();
        }

        /// SIGKILL mid-flight — the failure under test. Reaps the
        /// zombie but leaves the OS to discover the dead socket.
        fn kill(mut self) {
            let _ = self.child.kill();
            let _ = self.child.wait();
            drop(self.stdin.take());
        }
    }

    /// The deterministic replay wave (fgcs-smoke's shape): long
    /// busy/idle stretches, phase-shifted per machine, so the detector
    /// records real transitions on every shard.
    fn wave_sample(machine: u32, i: u64) -> WireSample {
        WireSample {
            t: i * STEP,
            load: SampleLoad::Direct(if ((i + 7 * machine as u64) / 40) % 2 == 1 {
                0.9
            } else {
                0.05
            }),
            host_resident_mb: 100,
            alive: true,
        }
    }

    fn admin(addr: &str) -> ServiceClient {
        let mut cfg = ClientConfig::new(addr);
        cfg.backoff_unit_ms = 1;
        ServiceClient::connect(cfg).unwrap_or_else(|e| panic!("connect {addr}: {e}"))
    }

    /// (role, applied_seq, head_seq, acked_seq) of a node.
    fn repl_status(client: &mut ServiceClient) -> (u8, u64, u64, u64) {
        match client.request(&Frame::ReplStatus) {
            Ok(Frame::ReplStatusReply {
                role,
                applied_seq,
                head_seq,
                acked_seq,
                ..
            }) => (role, applied_seq, head_seq, acked_seq),
            other => panic!("ReplStatusReply expected, got {other:?}"),
        }
    }

    /// Blocks until the server behind `client` has applied every
    /// machine's wave up to sample index `final_i` and drained its
    /// ingest queue.
    fn wait_caught_up(client: &mut ServiceClient, machines: &[u32], final_i: u64) {
        let final_t = final_i * STEP;
        for _ in 0..2_000 {
            if let Ok(Frame::StatsReply(stats)) = client.request(&Frame::QueryStats) {
                let done = stats.queue_depth == 0
                    && machines.iter().all(|&m| {
                        stats
                            .machines
                            .iter()
                            .any(|s| s.machine == m && s.last_t >= final_t)
                    });
                if done {
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("X13: server did not catch up to t = {final_t}");
    }

    fn transitions_of(client: &mut ServiceClient, machine: u32) -> Vec<WireTransition> {
        match client.request(&Frame::QueryTransitions {
            machine,
            since_seq: 0,
            max: 1_000_000,
        }) {
            Ok(Frame::Transitions { transitions, .. }) => transitions,
            other => panic!("Transitions expected, got {other:?}"),
        }
    }

    /// One phase of routed replay: samples `[lo, hi)` of every machine,
    /// interleaved batch-round-robin across machines (so both shards
    /// see concurrent load), availability queries mixed in. Returns
    /// `(batches, samples, elapsed, query latencies in µs, gap)` where
    /// `gap` is the time from `gap_from` to the first acked batch on a
    /// machine in `gap_machines` (the killed shard's fleet).
    #[allow(clippy::too_many_arguments)]
    struct PhaseOutcome {
        batches: u64,
        samples: u64,
        elapsed: Duration,
        lat_us: Vec<f64>,
        gap: Option<Duration>,
    }

    fn run_phase(
        router: &mut ClusterClient,
        machines: &[u32],
        lo: u64,
        hi: u64,
        batch: u64,
        query_every: u64,
        gap_from: Option<Instant>,
        gap_machines: &[u32],
    ) -> PhaseOutcome {
        let mut out = PhaseOutcome {
            batches: 0,
            samples: 0,
            elapsed: Duration::ZERO,
            lat_us: Vec::new(),
            gap: None,
        };
        let t0 = Instant::now();
        let mut i = lo;
        while i < hi {
            let end = (i + batch).min(hi);
            for &m in machines {
                let samples: Vec<WireSample> = (i..end).map(|j| wave_sample(m, j)).collect();
                let n = samples.len() as u64;
                let reply = router
                    .ingest(m, samples)
                    .unwrap_or_else(|e| panic!("X13: routed ingest died for machine {m}: {e}"));
                assert!(
                    matches!(reply, Frame::Ack { .. }),
                    "X13: ingest must ack, got {reply:?}"
                );
                out.batches += 1;
                out.samples += n;
                if out.gap.is_none() && gap_machines.contains(&m) {
                    out.gap = gap_from.map(|t| t.elapsed());
                }
                if out.batches % query_every == 0 {
                    let q0 = Instant::now();
                    let reply = router
                        .query_avail(m, 1_800)
                        .unwrap_or_else(|e| panic!("X13: routed query died: {e}"));
                    // Ingest is asynchronous: an early query can reach
                    // the server before its worker applied the
                    // machine's first batch, and the typed
                    // UnknownMachine error is a served (and timed)
                    // answer too.
                    assert!(
                        matches!(
                            reply,
                            Frame::AvailReply { .. }
                                | Frame::Error {
                                    code: ErrorCode::UnknownMachine,
                                    ..
                                }
                        ),
                        "X13: query must answer, got {reply:?}"
                    );
                    out.lat_us.push(q0.elapsed().as_secs_f64() * 1e6);
                }
            }
            i = end;
        }
        out.elapsed = t0.elapsed();
        out
    }

    fn p50_p99(lat: &[f64]) -> (f64, f64) {
        // One call, one sort — quantile() per percentile sorted twice.
        match quantiles(lat, &[0.5, 0.99]) {
            Some(q) => (q[0], q[1]),
            None => (0.0, 0.0),
        }
    }

    /// Splices `{"cluster": obj}` into cwd `BENCH_serve.json`, keeping
    /// every other section (X12's serve numbers, X14's sched gate, …)
    /// byte-for-byte. Creates a minimal document when X12 has not run.
    fn splice_bench(obj: String) {
        let path = "BENCH_serve.json";
        let base = std::fs::read_to_string(path).unwrap_or_else(|_| "{}".to_string());
        let out = fgcs_testbed::json::splice_key(&base, "cluster", &obj)
            .unwrap_or_else(|e| panic!("{path}: {e}"));
        std::fs::write(path, out).expect("write BENCH_serve.json");
        println!("spliced cluster gate into {path}");
    }

    fn serve_bin() -> PathBuf {
        let exe = std::env::current_exe().expect("current_exe");
        let bin = exe.parent().expect("exe dir").join("fgcs-serve");
        assert!(
            bin.exists(),
            "X13 needs the sibling fgcs-serve binary at {} — \
             build it first (cargo build --release --workspace)",
            bin.display()
        );
        bin
    }

    pub fn main() {
        let quick = std::env::args().any(|a| a == "--quick");
        // Thirds must land on batch boundaries so the kill happens
        // exactly between routed batches, never inside one.
        let (machines, samples, batch) = if quick {
            (6u32, 600u64, 50u64)
        } else {
            (16u32, 3_600u64, 100u64)
        };
        let query_every = 4;
        let ids: Vec<u32> = (1..=machines).collect();
        let third = samples / 3;

        println!(
            "=== X13 — kill-primary failover: {machines} machines x {samples} samples, \
             2 shards, SIGKILL at t = {}s ===",
            third * STEP
        );

        // Unkilled single-server reference on the same trace: the
        // bit-identical baseline the cluster must match.
        let reference = Server::start(ServiceConfig {
            backend: Backend::Threads,
            ..Default::default()
        })
        .expect("X13: reference server starts");
        let mut ref_client = admin(&reference.local_addr().to_string());
        for &m in &ids {
            let wave: Vec<WireSample> = (0..samples).map(|i| wave_sample(m, i)).collect();
            for chunk in wave.chunks(batch as usize) {
                let reply = ref_client
                    .request(&Frame::SampleBatch {
                        machine: m,
                        samples: chunk.to_vec(),
                    })
                    .expect("X13: reference ingest");
                assert!(matches!(reply, Frame::Ack { .. }), "{reply:?}");
            }
        }
        wait_caught_up(&mut ref_client, &ids, samples - 1);

        // The cluster: per shard one primary and one follower pulling
        // its replication log, all real processes.
        let bin = serve_bin();
        let spawn_primary = || {
            Node::spawn(
                &bin,
                &[
                    "--addr".into(),
                    "127.0.0.1:0".into(),
                    "--repl-log".into(),
                    "65536".into(),
                ],
            )
        };
        // Followers run with automatic failover armed: a primary that
        // misses 3 consecutive pulls after its 250 ms lease expires is
        // declared dead and the follower self-promotes. No operator
        // anywhere in this experiment.
        let spawn_follower = |of: &str| {
            Node::spawn(
                &bin,
                &[
                    "--addr".into(),
                    "127.0.0.1:0".into(),
                    "--repl-log".into(),
                    "65536".into(),
                    "--follower-of".into(),
                    of.into(),
                    "--pull-interval".into(),
                    "1".into(),
                    "--auto-promote".into(),
                    "--lease".into(),
                    "250".into(),
                    "--missed-pulls".into(),
                    "3".into(),
                ],
            )
        };
        let primary0 = spawn_primary();
        let primary1 = spawn_primary();
        let follower0 = spawn_follower(&primary0.addr);
        let follower1 = spawn_follower(&primary1.addr);
        println!(
            "shard-0: primary {} -> follower {}\nshard-1: primary {} -> follower {}",
            primary0.addr, follower0.addr, primary1.addr, follower1.addr
        );

        let mut ccfg = ClusterConfig::new(vec![
            ShardSpec {
                name: "shard-0".into(),
                primary_addr: primary0.addr.clone(),
                follower_addr: Some(follower0.addr.clone()),
            },
            ShardSpec {
                name: "shard-1".into(),
                primary_addr: primary1.addr.clone(),
                follower_addr: Some(follower1.addr.clone()),
            },
        ]);
        ccfg.backoff.base = 5;
        ccfg.backoff.cap = 100;
        ccfg.max_attempts = 12;
        let mut router = ClusterClient::connect(ccfg).expect("X13: router");

        let owned0: Vec<u32> = ids
            .iter()
            .copied()
            .filter(|&m| router.shard_for(m) == 0)
            .collect();
        let owned1: Vec<u32> = ids
            .iter()
            .copied()
            .filter(|&m| router.shard_for(m) == 1)
            .collect();
        assert!(
            !owned0.is_empty() && !owned1.is_empty(),
            "X13: rendezvous must give both shards machines ({owned0:?} / {owned1:?})"
        );
        println!("ownership: shard-0 {owned0:?}, shard-1 {owned1:?}");

        // Phase 1: healthy baseline.
        let before = run_phase(&mut router, &ids, 0, third, batch, query_every, None, &[]);

        // Quiesce shard 0 to the phase boundary: the primary drains its
        // ingest queue and the follower applies up to the primary's log
        // head, so the kill point's acked seq covers everything routed
        // so far and the zero-loss claim is exact, not probabilistic.
        let mut p0 = admin(&primary0.addr);
        wait_caught_up(&mut p0, &owned0, third - 1);
        let mut f0 = admin(&follower0.addr);
        let (head_at_kill, acked_at_kill) = {
            let mut status = None;
            for _ in 0..2_000 {
                let (_, _, head, acked) = repl_status(&mut p0);
                let (_, applied, _, _) = repl_status(&mut f0);
                if head > 0 && applied == head {
                    status = Some((head, acked));
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            status.expect("X13: follower never caught up to the primary's log head")
        };
        drop(p0);

        // The failure: SIGKILL the primary. Nothing else — no Promote
        // frame, no operator. The follower must notice the silence and
        // take over on its own; `failover_promote_ms` is how long the
        // cluster had no shard-0 primary.
        let t_kill = Instant::now();
        primary0.kill();
        let promote_ms = {
            let mut flipped = None;
            for _ in 0..4_000 {
                let (role, _, _, _) = repl_status(&mut f0);
                if role == fgcs_service::ROLE_PRIMARY {
                    flipped = Some(t_kill.elapsed().as_secs_f64() * 1e3);
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            flipped.expect("X13: follower never self-promoted after the SIGKILL")
        };
        let (_, applied_at_promote, _, _) = repl_status(&mut f0);
        assert!(
            applied_at_promote >= acked_at_kill,
            "X13: promoted follower behind the acked seq ({applied_at_promote} < {acked_at_kill})"
        );
        assert_eq!(
            applied_at_promote, head_at_kill,
            "X13: promoted follower must hold the full acked log"
        );

        // Phase 2: the router discovers the dead endpoint, fails over,
        // and resumes. `gap` = SIGKILL to the first shard-0 ack.
        let during = run_phase(
            &mut router,
            &ids,
            third,
            2 * third,
            batch,
            query_every,
            Some(t_kill),
            &owned0,
        );
        let gap = during.gap.expect("X13: during phase acked a shard-0 batch");

        // Phase 3: steady state on the promoted topology.
        let after = run_phase(
            &mut router,
            &ids,
            2 * third,
            samples,
            batch,
            query_every,
            None,
            &[],
        );

        let m = router.metrics;
        assert!(
            m.failovers >= 1,
            "X13: the router must have failed shard 0 over (metrics {m:?})"
        );
        assert!(
            m.follower_reads >= 1,
            "X13: queries must have been served from follower endpoints (metrics {m:?})"
        );

        // Converge and compare: every machine's transition records on
        // its owning node must be bit-identical to the reference.
        let mut surv0 = f0;
        wait_caught_up(&mut surv0, &owned0, samples - 1);
        let mut surv1 = admin(&primary1.addr);
        wait_caught_up(&mut surv1, &owned1, samples - 1);
        let mut records_total = 0u64;
        let mut records_lost = 0u64;
        for (owned, client) in [(&owned0, &mut surv0), (&owned1, &mut surv1)] {
            for &machine in owned.iter() {
                let want = transitions_of(&mut ref_client, machine);
                let got = transitions_of(client, machine);
                assert!(!want.is_empty(), "X13: wave must produce transitions");
                records_total += want.len() as u64;
                records_lost += want.iter().filter(|t| !got.contains(t)).count() as u64;
                assert_eq!(
                    want, got,
                    "X13: machine {machine} records diverge from the unkilled reference"
                );
            }
        }
        assert_eq!(
            records_lost, 0,
            "X13: zero records lost up to the acked seq"
        );
        reference.shutdown();

        let gap_ms = gap.as_secs_f64() * 1e3;
        let (b50, b99) = p50_p99(&before.lat_us);
        let (d50, d99) = p50_p99(&during.lat_us);
        let (a50, a99) = p50_p99(&after.lat_us);
        let rate = |p: &PhaseOutcome| p.samples as f64 / p.elapsed.as_secs_f64().max(1e-9);
        for (name, p, p50, p99) in [
            ("before", &before, b50, b99),
            ("during", &during, d50, d99),
            ("after", &after, a50, a99),
        ] {
            println!(
                "{name:>7}: {:>5} batches ({:>7} samples) in {:>6.3} s -> {:>8.0} samples/s, \
                 query p50 {:>6.0} us  p99 {:>7.0} us",
                p.batches,
                p.samples,
                p.elapsed.as_secs_f64(),
                rate(p),
                p50,
                p99
            );
        }
        println!(
            "failover: self-promotion {promote_ms:.1} ms (SIGKILL -> follower is primary), \
             gap {gap_ms:.1} ms (SIGKILL -> first shard-0 ack), \
             {} retries, {} failovers, {} resumed batches, {} samples deduped on resume, \
             {} follower reads",
            m.retries, m.failovers, m.resumed_batches, m.skipped_samples, m.follower_reads
        );
        println!(
            "records:  {records_total} transitions across {} machines, {records_lost} lost, \
             acked seq at kill {acked_at_kill} (log head {head_at_kill}), \
             promoted follower applied {applied_at_promote}",
            machines
        );

        // results/serve_cluster.csv — failover columns live on the
        // `during` row (zero elsewhere), like the phase they belong to.
        std::fs::create_dir_all("results").expect("mkdir results");
        let row = |phase: &str, p: &PhaseOutcome, p50: f64, p99: f64, failover: bool| {
            format!(
                "{phase},{},{},{:.3},{:.0},{:.0},{:.0},{:.1},{},{},{},{},{},{:.1},{}",
                p.batches,
                p.samples,
                p.elapsed.as_secs_f64(),
                rate(p),
                p50,
                p99,
                if failover { gap_ms } else { 0.0 },
                if failover { records_lost } else { 0 },
                if failover { m.retries } else { 0 },
                if failover { m.failovers } else { 0 },
                if failover { m.resumed_batches } else { 0 },
                if failover { m.skipped_samples } else { 0 },
                if failover { promote_ms } else { 0.0 },
                if failover { m.follower_reads } else { 0 },
            )
        };
        let csv = format!(
            "phase,batches,samples,elapsed_s,samples_per_s,query_p50_us,query_p99_us,\
             gap_ms,records_lost,retries,failovers,resumed_batches,skipped_samples,\
             promote_ms,follower_reads\n{}\n{}\n{}\n",
            row("before", &before, b50, b99, false),
            row("during", &during, d50, d99, true),
            row("after", &after, a50, a99, false),
        );
        std::fs::write("results/serve_cluster.csv", csv).expect("write serve_cluster.csv");
        println!("wrote results/serve_cluster.csv");

        // The flat gate object ci.sh greps out of BENCH_serve.json.
        let mut w = ObjWriter::new();
        w.str(
            "description",
            "X13: 2-shard cluster (fgcs-serve primaries + replication followers), \
             SIGKILL shard-0 primary mid-replay with no operator step: the follower \
             detects the dead primary (missed pulls + expired lease) and self-promotes \
             at a fresh epoch; router fails over with capped-jittered retries and \
             t > last_t resume, reads served from follower endpoints; phases are \
             routed replay thirds before/during/after the kill",
        )
        .str(
            "command",
            "cargo run --release -p fgcs-experiments --bin fgcs-cluster",
        )
        .u64("machines", machines as u64)
        .u64("samples_per_machine", samples)
        .f64("failover_promote_ms", promote_ms)
        .f64("failover_gap_ms", gap_ms)
        .u64("failover_records_lost", records_lost)
        .u64("failover_records_total", records_total)
        .u64("failover_acked_seq_at_kill", acked_at_kill)
        .u64("failover_applied_seq_at_promote", applied_at_promote)
        .u64("failover_retries", m.retries)
        .u64("failover_count", m.failovers)
        .u64("failover_resumed_batches", m.resumed_batches)
        .u64("failover_skipped_samples", m.skipped_samples)
        .u64("follower_reads", m.follower_reads)
        .f64("before_query_p99_us", b99)
        .f64("during_query_p99_us", d99)
        .f64("after_query_p99_us", a99)
        .f64("before_samples_per_sec", rate(&before))
        .f64("during_samples_per_sec", rate(&during))
        .f64("after_samples_per_sec", rate(&after));
        splice_bench(w.finish());

        follower1.shutdown();
        primary1.shutdown();
        // The promoted follower is shut down last: `surv0` still holds
        // a connection, which the graceful path happily drains.
        drop(surv0);
        drop(surv1);
        follower0.shutdown();
        println!("\n[X13 done: 0/{records_total} records lost, gap {gap_ms:.1} ms]");
    }
}

#[cfg(target_os = "linux")]
fn main() {
    imp::main();
}

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("fgcs-cluster: the cluster experiment needs the Linux socket layer");
    std::process::exit(2);
}
