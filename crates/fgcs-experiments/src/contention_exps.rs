//! Regenerators for the contention experiments: Figures 1–4, Table 1 and
//! the Th1/Th2 calibration.

use fgcs_core::calibrate::{calibrate, CalibrationConfig};
use fgcs_core::contention::{
    self, fig1_series, guest_usage_experiment, priority_sweep, spec_musbus_experiment,
    table1_measurements, ContentionConfig,
};

use crate::report::{banner, compare_line, pct, write_csv, TextTable};

fn contention_cfg(quick: bool) -> ContentionConfig {
    if quick {
        ContentionConfig::quick()
    } else {
        ContentionConfig::default()
    }
}

/// Figure 1(a)/(b): reduction rate of host CPU usage vs `LH` for host
/// groups of 1–5 processes, guest at nice 0 or nice 19.
pub fn fig1(guest_nice: i8, quick: bool) {
    let label = if guest_nice == 0 { "fig1a" } else { "fig1b" };
    banner(&format!(
        "Figure 1({}) — host CPU reduction vs LH, guest nice {guest_nice}",
        if guest_nice == 0 { "a" } else { "b" }
    ));
    let cfg = contention_cfg(quick);
    let (lh, m) = contention::fig1_standard_grid();
    let rows = contention::fig1_sweep(guest_nice, &lh, &m, &cfg);

    let mut table = TextTable::new(&["LH", "M=1", "M=2", "M=3", "M=4", "M=5"]);
    let series: Vec<Vec<(f64, f64)>> = (1..=5).map(|mm| fig1_series(&rows, mm)).collect();
    let mut csv = Vec::new();
    for (i, &l) in lh.iter().enumerate() {
        let mut cells = vec![format!("{l:.1}")];
        let mut csv_row = vec![format!("{l:.2}")];
        for s in &series {
            cells.push(pct(s[i].1));
            csv_row.push(format!("{:.4}", s[i].1));
        }
        table.row(cells);
        csv.push(csv_row.join(","));
    }
    table.print();
    let path = write_csv(label, "lh,m1,m2,m3,m4,m5", &csv).expect("write csv");
    println!("wrote {}", path.display());
    if guest_nice == 0 {
        compare_line("5% crossing (Th1 region)", "see calibrate", "Th1 = 0.2");
        println!("expected shape: grows with LH, decreases with M, ~50% at LH=1 (M=1)");
    } else {
        compare_line("5% crossing (Th2 region)", "see calibrate", "Th2 = 0.6");
        println!("expected shape: stays <5% until LH~0.6, ~10-20% at LH=1");
    }
}

/// Threshold calibration — the paper's reading of Figure 1.
pub fn calibrate_exp(quick: bool) {
    banner("Calibration — deriving Th1/Th2 from the contention sweeps");
    let cfg = if quick {
        CalibrationConfig::quick()
    } else {
        CalibrationConfig::default()
    };
    let cal = calibrate(&cfg);
    compare_line(
        "Th1 (equal-priority guest harms host)",
        format!("{:.2}", cal.thresholds.th1),
        "0.20",
    );
    compare_line(
        "Th2 (nice-19 guest harms host)",
        format!("{:.2}", cal.thresholds.th2),
        "0.60",
    );
    let rows: Vec<String> = cal
        .equal_priority
        .iter()
        .map(|r| format!("0,{:.2},{},{:.4}", r.lh, r.m, r.reduction))
        .chain(
            cal.lowest_priority
                .iter()
                .map(|r| format!("19,{:.2},{},{:.4}", r.lh, r.m, r.reduction)),
        )
        .collect();
    let path = write_csv("calibration", "guest_nice,lh,m,reduction", &rows).expect("write csv");
    println!("wrote {}", path.display());
}

/// Figure 2: reduction rate for one host process vs guest priority.
pub fn fig2(quick: bool) {
    banner("Figure 2 — reduction rate vs LH x guest priority");
    let cfg = contention_cfg(quick);
    let lh: Vec<f64> = (2..=10).map(|i| i as f64 / 10.0).collect();
    let nices: Vec<i8> = vec![0, 5, 10, 15, 19];
    let rows = priority_sweep(&lh, &nices, &cfg);

    let mut table = TextTable::new(&["LH", "nice 0", "nice 5", "nice 10", "nice 15", "nice 19"]);
    let mut csv = Vec::new();
    for &l in &lh {
        let mut cells = vec![format!("{l:.1}")];
        for &n in &nices {
            let r = rows
                .iter()
                .find(|r| r.lh == l && r.guest_nice == n)
                .expect("grid complete");
            cells.push(pct(r.reduction));
            csv.push(format!("{l:.2},{n},{:.4}", r.reduction));
        }
        table.row(cells);
    }
    table.print();
    let path = write_csv("fig2", "lh,guest_nice,reduction", &csv).expect("write csv");
    println!("wrote {}", path.display());
    println!(
        "paper's finding: for LH in 0.2-0.5 the guest priority hardly matters; \
         above 0.5 only nice 19 keeps the slowdown acceptable — gradual \
         priorities buy nothing."
    );
}

/// Figure 3: guest CPU usage with equal vs lowest priority under light
/// host load.
pub fn fig3(quick: bool) {
    banner("Figure 3 — guest CPU usage, equal vs lowest priority");
    let cfg = contention_cfg(quick);
    let rows = guest_usage_experiment(&[0.2, 0.1], &[1.0, 0.9, 0.8, 0.7], &cfg);

    let mut table = TextTable::new(&["host+guest (isolated)", "equal priority", "nice 19", "gap"]);
    let mut csv = Vec::new();
    let mut gaps = Vec::new();
    for &h in &[0.2, 0.1] {
        for &g in &[1.0, 0.9, 0.8, 0.7] {
            let at = |nice: i8| {
                rows.iter()
                    .find(|r| {
                        r.host_usage == h && r.guest_usage_isolated == g && r.guest_nice == nice
                    })
                    .expect("grid complete")
                    .guest_usage_actual
            };
            let (eq, low) = (at(0), at(19));
            gaps.push(eq - low);
            table.row(vec![
                format!("{h:.1}+{g:.1}"),
                pct(eq),
                pct(low),
                format!("{:+.1}pp", (eq - low) * 100.0),
            ]);
            csv.push(format!("{h:.1},{g:.1},{eq:.4},{low:.4}"));
        }
    }
    table.print();
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    compare_line(
        "mean extra guest CPU at equal priority",
        format!("{:.1}pp", mean_gap * 100.0),
        "~2pp",
    );
    let path = write_csv(
        "fig3",
        "host_usage,guest_usage_isolated,equal_prio,nice19",
        &csv,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}

/// Figure 4: SPEC guests × Musbus hosts on the 384 MB Solaris machine.
pub fn fig4(quick: bool) {
    banner("Figure 4 — SPEC x Musbus slowdown with thrashing flags (* = thrashing)");
    let cfg = contention_cfg(quick);
    let rows = spec_musbus_experiment(&cfg);

    for nice in [0i8, 19] {
        println!("\nguest priority {nice}:");
        let mut table = TextTable::new(&["workload", "apsi", "galgel", "bzip2", "mcf"]);
        for h in ["H1", "H2", "H3", "H4", "H5", "H6"] {
            let mut cells = vec![h.to_string()];
            for app in ["apsi", "galgel", "bzip2", "mcf"] {
                let r = rows
                    .iter()
                    .find(|r| r.workload == h && r.guest_app == app && r.guest_nice == nice)
                    .expect("grid complete");
                let star = if r.thrashing { "*" } else { "" };
                cells.push(format!("{}{star}", pct(r.reduction)));
            }
            table.row(cells);
        }
        table.print();
    }
    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{:.4},{}",
                r.workload, r.guest_app, r.guest_nice, r.reduction, r.thrashing
            )
        })
        .collect();
    let path = write_csv(
        "fig4",
        "workload,guest_app,guest_nice,reduction,thrashing",
        &csv,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
    println!(
        "paper's findings: H2/H5 thrash with apsi/bzip2/mcf regardless of priority \
         (memory is orthogonal to CPU priority); galgel never thrashes; H1/H3 \
         negligible, H4 needs renice, H6 forces termination."
    );
}

/// Table 1: resource usage of the tested applications, measured alone.
pub fn table1(quick: bool) {
    banner("Table 1 — resource usage of tested applications (measured alone)");
    let cfg = contention_cfg(quick);
    let rows = table1_measurements(&cfg);

    let paper: &[(&str, f64, u32, u32)] = &[
        ("apsi", 0.98, 193, 205),
        ("galgel", 0.99, 29, 155),
        ("bzip2", 0.97, 180, 182),
        ("mcf", 0.99, 96, 96),
        ("H1", 0.086, 71, 122),
        ("H2", 0.092, 213, 247),
        ("H3", 0.172, 53, 151),
        ("H4", 0.219, 68, 122),
        ("H5", 0.570, 210, 236),
        ("H6", 0.662, 84, 113),
    ];
    let mut table = TextTable::new(&[
        "workload",
        "CPU (measured)",
        "CPU (paper)",
        "resident MB",
        "virtual MB",
    ]);
    let mut csv = Vec::new();
    for r in &rows {
        let p = paper.iter().find(|p| p.0 == r.name).expect("known name");
        table.row(vec![
            r.name.to_string(),
            pct(r.cpu_usage),
            pct(p.1),
            format!("{} ({})", r.resident_mb, p.2),
            format!("{} ({})", r.virtual_mb, p.3),
        ]);
        csv.push(format!(
            "{},{:.4},{:.4},{},{}",
            r.name, r.cpu_usage, p.1, r.resident_mb, r.virtual_mb
        ));
    }
    table.print();
    let path = write_csv(
        "table1",
        "name,cpu_measured,cpu_paper,resident_mb,virtual_mb",
        &csv,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}

/// Figure 5: the five-state model, printed as its transition table.
pub fn fig5() {
    banner("Figure 5 — the multi-state availability model");
    use fgcs_core::model::AvailState;
    for s in AvailState::ALL {
        println!("{s}: {}", s.description());
    }
    println!("\nguest-job transition matrix (rows: from, cols: to):");
    let mut table = TextTable::new(&["", "S1", "S2", "S3", "S4", "S5"]);
    for from in AvailState::ALL {
        let mut cells = vec![from.to_string()];
        for to in AvailState::ALL {
            cells.push(if from.can_transition(to) {
                "yes".into()
            } else {
                ".".into()
            });
        }
        table.row(cells);
    }
    table.print();
    println!("S3/S4/S5 are absorbing for a guest job: no state is left on the host.");
}

/// Ablation: the two-threshold managed policy versus static guest
/// priorities (the §3.2.2 argument, plus the controller in the loop).
pub fn ablation(quick: bool) {
    banner("Ablation — managed two-threshold policy vs static priorities");
    let cfg = contention_cfg(quick);
    let thresholds = fgcs_core::model::Thresholds::LINUX_TESTBED;
    let machine = fgcs_sim::machine::MachineConfig::default();

    let mut table = TextTable::new(&[
        "host LH",
        "static nice 0",
        "static nice 19",
        "managed policy",
        "managed guest CPU",
    ]);
    let mut csv = Vec::new();
    for &lh in &[0.1, 0.3, 0.5, 0.7, 0.9] {
        let hosts = [fgcs_sim::workloads::synthetic::host_process("h", lh)];
        let eq = contention::measure_group(
            &machine,
            &hosts,
            Some(&fgcs_sim::workloads::synthetic::guest_process(0)),
            &cfg,
        );
        let low = contention::measure_group(
            &machine,
            &hosts,
            Some(&fgcs_sim::workloads::synthetic::guest_process(19)),
            &cfg,
        );
        let managed = contention::measure_managed(&machine, &hosts, &cfg, thresholds);
        table.row(vec![
            format!("{lh:.1}"),
            pct(eq.reduction_rate),
            pct(low.reduction_rate),
            pct(managed.reduction_rate),
            pct(managed.guest_usage),
        ]);
        csv.push(format!(
            "{lh:.1},{:.4},{:.4},{:.4},{:.4}",
            eq.reduction_rate, low.reduction_rate, managed.reduction_rate, managed.guest_usage
        ));
    }
    table.print();
    let path = write_csv(
        "ablation_policy",
        "lh,static0,static19,managed,managed_guest_cpu",
        &csv,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
    println!(
        "the managed policy keeps host slowdown near the nice-19 line at high \
         load while harvesting more CPU than always-nice-19 at low load — the \
         paper's argument for the two-threshold design."
    );
}
