//! Regenerators for the trace study: Table 2, Figures 6–7, and the
//! regularity analysis (§5).

use fgcs_testbed::analysis::{self, REBOOT_CUTOFF_SECS};
use fgcs_testbed::calendar::DayType;
use fgcs_testbed::runner::{run_testbed, TestbedConfig};
use fgcs_testbed::trace::Trace;

use crate::report::{banner, bar, compare_line, hours, pct, write_csv, TextTable};

/// Runs (or scales down) the standard 20-machine, 92-day testbed.
pub fn standard_trace(quick: bool) -> Trace {
    let mut cfg = TestbedConfig::default();
    if quick {
        cfg.lab.machines = 8;
        cfg.lab.days = 21;
    }
    run_testbed(&cfg)
}

/// Table 2: resource unavailability by cause.
pub fn table2(quick: bool) {
    banner("Table 2 — resource unavailability due to different causes");
    let trace = standard_trace(quick);
    println!(
        "trace: {} machines x {} days = {} machine-days, {} occurrences",
        trace.meta.machines,
        trace.meta.days,
        trace.machine_days(),
        trace.records.len()
    );
    let t2 = analysis::table2(&trace);
    let (cpu_pct, mem_pct, urr_pct) = t2.percentage_ranges();

    let mut table = TextTable::new(&["category", "measured (per machine)", "paper (per machine)"]);
    table.row(vec!["total".into(), t2.total.to_string(), "405-453".into()]);
    table.row(vec![
        "UEC / CPU contention".into(),
        t2.cpu.to_string(),
        "283-356".into(),
    ]);
    table.row(vec![
        "UEC / memory contention".into(),
        t2.mem.to_string(),
        "83-121".into(),
    ]);
    table.row(vec!["URR".into(), t2.urr.to_string(), "3-12".into()]);
    table.row(vec!["CPU %".into(), format!("{cpu_pct}%"), "69-79%".into()]);
    table.row(vec![
        "memory %".into(),
        format!("{mem_pct}%"),
        "19-30%".into(),
    ]);
    table.row(vec!["URR %".into(), format!("{urr_pct}%"), "0-3%".into()]);
    table.print();
    compare_line(
        &format!("URR from reboots (raw outage < {REBOOT_CUTOFF_SECS}s)"),
        pct(t2.urr_reboot_fraction),
        "~90%",
    );

    let csv: Vec<String> = t2
        .per_machine
        .iter()
        .enumerate()
        .map(|(m, c)| {
            format!(
                "{m},{},{},{},{},{}",
                c.total, c.cpu, c.mem, c.urr, c.urr_reboots
            )
        })
        .collect();
    let path = write_csv("table2", "machine,total,cpu,mem,urr,urr_reboots", &csv).expect("csv");
    println!("wrote {}", path.display());
}

/// Figure 6: cumulative distribution of availability-interval lengths.
pub fn fig6(quick: bool) {
    banner("Figure 6 — CDF of availability-interval lengths");
    let trace = standard_trace(quick);
    let iv = analysis::intervals(&trace);

    let mut table = TextTable::new(&["interval length", "weekday CDF", "weekend CDF"]);
    let grid_hours: Vec<f64> = vec![
        5.0 / 60.0,
        0.5,
        1.0,
        2.0,
        3.0,
        4.0,
        5.0,
        6.0,
        8.0,
        10.0,
        12.0,
    ];
    let mut csv = Vec::new();
    for &h in &grid_hours {
        let wd = iv.weekday.eval(h);
        let we = iv.weekend.eval(h);
        table.row(vec![
            if h < 0.2 {
                "5 min".into()
            } else {
                format!("{h:.1} h")
            },
            pct(wd),
            pct(we),
        ]);
        csv.push(format!("{h:.3},{wd:.4},{we:.4}"));
    }
    table.print();
    compare_line(
        "weekday mean interval",
        hours(iv.weekday.mean() * 3600.0),
        "close to 3 h",
    );
    compare_line(
        "weekend mean interval",
        hours(iv.weekend.mean() * 3600.0),
        "above 5 h",
    );
    compare_line(
        "weekday intervals in 2-4 h",
        pct(iv.fraction_between(DayType::Weekday, 2.0, 4.0)),
        "~60%",
    );
    compare_line(
        "weekend intervals in 4-6 h",
        pct(iv.fraction_between(DayType::Weekend, 4.0, 6.0)),
        "~60%",
    );
    compare_line(
        "intervals shorter than 5 min",
        pct(iv.weekday.eval(5.0 / 60.0)),
        "~5%",
    );
    let path = write_csv("fig6", "hours,weekday_cdf,weekend_cdf", &csv).expect("csv");
    println!("wrote {}", path.display());
}

/// Figure 7: unavailability occurrences per hour of day.
pub fn fig7(quick: bool) {
    banner("Figure 7 — unavailability occurrences per hour of day (testbed-wide)");
    let trace = standard_trace(quick);
    let h = analysis::hourly(&trace);

    let mut csv = Vec::new();
    for (dt, g) in [
        (DayType::Weekday, &h.weekday),
        (DayType::Weekend, &h.weekend),
    ] {
        println!("\n{dt}s (mean [min-max], bar scaled to 20):");
        let mut table = TextTable::new(&["hour", "mean", "range", ""]);
        for (hour, s) in g.iter() {
            table.row(vec![
                format!("{:02}-{:02}", hour, hour + 1),
                format!("{:.1}", s.mean()),
                format!("[{:.0}-{:.0}]", s.min(), s.max()),
                bar(s.mean(), 20.0, 30),
            ]);
            csv.push(format!(
                "{dt},{hour},{:.3},{:.0},{:.0}",
                s.mean(),
                s.min(),
                s.max()
            ));
        }
        table.print();
    }
    println!();
    compare_line(
        "4-5 AM spike (updatedb on every machine)",
        format!("{:.1}", h.weekday.get(&4).map(|s| s.mean()).unwrap_or(0.0)),
        "20 (= machine count)",
    );
    println!("expected shape: low at night, ramp after 10 AM, weekday > weekend at the same hour.");
    let path = write_csv("fig7", "day_type,hour,mean,min,max", &csv).expect("csv");
    println!("wrote {}", path.display());
}

/// The §5.3 regularity claim: daily patterns repeat.
pub fn regularity(quick: bool) {
    banner("Regularity (§5.3) — are daily patterns comparable to recent history?");
    let trace = standard_trace(quick);
    let r = analysis::regularity(&trace);
    compare_line(
        "mean pairwise weekday correlation",
        format!("{:.2}", r.weekday_correlation),
        "high (patterns repeat)",
    );
    compare_line(
        "mean pairwise weekend correlation",
        format!("{:.2}", r.weekend_correlation),
        "high (patterns repeat)",
    );
    compare_line(
        "mean per-hour weekday CV",
        format!("{:.2}", r.weekday_mean_cv),
        "small deviations",
    );
    compare_line(
        "mean per-hour weekend CV",
        format!("{:.2}", r.weekend_mean_cv),
        "small deviations",
    );
    println!(
        "interpretation: per-hour failure counts correlate strongly across days \
         of the same type, which is exactly what makes the history-window \
         predictor (experiment `predict`) work."
    );
}

/// Writes the full trace to results/ in both formats.
pub fn dump_trace(quick: bool) {
    banner("Trace dump — the three-month testbed trace on disk");
    let trace = standard_trace(quick);
    let dir = crate::report::results_dir();
    std::fs::create_dir_all(&dir).expect("mkdir results");
    let jsonl = dir.join("trace.jsonl");
    let csv = dir.join("trace.csv");
    trace
        .write_jsonl(std::fs::File::create(&jsonl).expect("create"))
        .expect("write jsonl");
    trace
        .write_csv(std::fs::File::create(&csv).expect("create"))
        .expect("write csv");
    println!(
        "wrote {} ({} records) and {}",
        jsonl.display(),
        trace.records.len(),
        csv.display()
    );
}
