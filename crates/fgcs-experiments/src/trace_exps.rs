//! Regenerators for the trace study: Table 2, Figures 6–7, and the
//! regularity analysis (§5).
//!
//! The analyses here run through the bounded-memory streaming path
//! ([`fgcs_testbed::streaming`]) — the same code the fleet experiment
//! uses at 100k+ machines — and, at this lab scale where it is cheap,
//! verify every reported number against the exact in-memory oracle
//! before printing anything.

use fgcs_stats::sketch::DEFAULT_K;
use fgcs_testbed::analysis::{self, REBOOT_CUTOFF_SECS};
use fgcs_testbed::calendar::DayType;
use fgcs_testbed::runner::{run_testbed, TestbedConfig};
use fgcs_testbed::streaming::{StreamingAnalysis, Table2Summary};
use fgcs_testbed::trace::Trace;

use crate::report::{banner, bar, compare_line, hours, pct, write_csv, TextTable};

/// Runs (or scales down) the standard 20-machine, 92-day testbed.
pub fn standard_trace(quick: bool) -> Trace {
    let mut cfg = TestbedConfig::default();
    if quick {
        cfg.lab.machines = 8;
        cfg.lab.days = 21;
    }
    run_testbed(&cfg)
}

/// Folds `trace` through the streaming analysis and verifies it against
/// the exact oracle: Table 2 and the Figure 7 matrix must agree
/// bit-for-bit (integer folds commute), Figure 6 CDF queries must land
/// within the sketch's runtime-certified rank-error bound.
pub fn verified_streaming(trace: &Trace) -> StreamingAnalysis {
    let acc = StreamingAnalysis::from_trace(trace, DEFAULT_K);
    let t2 = analysis::table2(trace);
    assert_eq!(
        acc.table2_summary(),
        Table2Summary::from(&t2),
        "streaming Table 2 diverged from the exact oracle"
    );
    assert_eq!(
        acc.day_hour_counts(),
        &analysis::day_hour_counts(trace)[..],
        "streaming Figure 7 matrix diverged from the exact oracle"
    );
    let iv = analysis::intervals(trace);
    let mut worst_eps = 0.0f64;
    for (dt, ecdf) in [
        (DayType::Weekday, &iv.weekday),
        (DayType::Weekend, &iv.weekend),
    ] {
        let sk = acc.interval_sketch(dt);
        assert_eq!(sk.count(), ecdf.len() as u64, "{dt} interval count");
        if sk.count() == 0 {
            continue;
        }
        let eps = sk.rank_error_bound() as f64 / sk.count() as f64;
        worst_eps = worst_eps.max(eps);
        for i in 0..=48 {
            let x = i as f64 * 0.5; // 0 h .. 24 h
            let exact = ecdf.eval(x);
            let sketched = sk.cdf(x).expect("non-empty sketch");
            assert!(
                (exact - sketched).abs() <= eps + 1e-12,
                "{dt} cdf({x}): exact {exact}, sketch {sketched}, bound {eps}"
            );
        }
    }
    println!(
        "[streaming verified against exact oracle: Table 2 + Fig 7 bit-identical, \
         Fig 6 CDF error <= {worst_eps:.5} (k = {DEFAULT_K})]"
    );
    acc
}

/// Table 2: resource unavailability by cause.
pub fn table2(quick: bool) {
    banner("Table 2 — resource unavailability due to different causes");
    let trace = standard_trace(quick);
    println!(
        "trace: {} machines x {} days = {} machine-days, {} occurrences",
        trace.meta.machines,
        trace.meta.days,
        trace.machine_days(),
        trace.records.len()
    );
    let t2s = verified_streaming(&trace).table2_summary();

    let mut table = TextTable::new(&["category", "measured (per machine)", "paper (per machine)"]);
    table.row(vec![
        "total".into(),
        t2s.total.to_string(),
        "405-453".into(),
    ]);
    table.row(vec![
        "UEC / CPU contention".into(),
        t2s.cpu.to_string(),
        "283-356".into(),
    ]);
    table.row(vec![
        "UEC / memory contention".into(),
        t2s.mem.to_string(),
        "83-121".into(),
    ]);
    table.row(vec!["URR".into(), t2s.urr.to_string(), "3-12".into()]);
    table.row(vec![
        "CPU %".into(),
        format!("{}%", t2s.cpu_pct),
        "69-79%".into(),
    ]);
    table.row(vec![
        "memory %".into(),
        format!("{}%", t2s.mem_pct),
        "19-30%".into(),
    ]);
    table.row(vec![
        "URR %".into(),
        format!("{}%", t2s.urr_pct),
        "0-3%".into(),
    ]);
    table.print();
    compare_line(
        &format!("URR from reboots (raw outage < {REBOOT_CUTOFF_SECS}s)"),
        pct(t2s.urr_reboot_fraction),
        "~90%",
    );

    // The per-machine CSV is inherently a per-machine artifact; it comes
    // from the exact path (which the summary above was verified against).
    let t2 = analysis::table2(&trace);
    let csv: Vec<String> = t2
        .per_machine
        .iter()
        .enumerate()
        .map(|(m, c)| {
            format!(
                "{m},{},{},{},{},{}",
                c.total, c.cpu, c.mem, c.urr, c.urr_reboots
            )
        })
        .collect();
    let path = write_csv("table2", "machine,total,cpu,mem,urr,urr_reboots", &csv).expect("csv");
    println!("wrote {}", path.display());
}

/// Figure 6: cumulative distribution of availability-interval lengths.
pub fn fig6(quick: bool) {
    banner("Figure 6 — CDF of availability-interval lengths");
    let trace = standard_trace(quick);
    let acc = verified_streaming(&trace);
    let (wd, we) = (
        acc.interval_sketch(DayType::Weekday),
        acc.interval_sketch(DayType::Weekend),
    );

    let mut table = TextTable::new(&["interval length", "weekday CDF", "weekend CDF"]);
    let grid_hours: Vec<f64> = vec![
        5.0 / 60.0,
        0.5,
        1.0,
        2.0,
        3.0,
        4.0,
        5.0,
        6.0,
        8.0,
        10.0,
        12.0,
    ];
    let mut csv = Vec::new();
    for &h in &grid_hours {
        let wdc = wd.cdf(h).unwrap_or(0.0);
        let wec = we.cdf(h).unwrap_or(0.0);
        table.row(vec![
            if h < 0.2 {
                "5 min".into()
            } else {
                format!("{h:.1} h")
            },
            pct(wdc),
            pct(wec),
        ]);
        csv.push(format!("{h:.3},{wdc:.4},{wec:.4}"));
    }
    table.print();
    compare_line(
        "weekday mean interval",
        hours(acc.mean_hours(DayType::Weekday) * 3600.0),
        "close to 3 h",
    );
    compare_line(
        "weekend mean interval",
        hours(acc.mean_hours(DayType::Weekend) * 3600.0),
        "above 5 h",
    );
    compare_line(
        "weekday intervals in 2-4 h",
        pct(wd.cdf(4.0).unwrap_or(0.0) - wd.cdf(2.0).unwrap_or(0.0)),
        "~60%",
    );
    compare_line(
        "weekend intervals in 4-6 h",
        pct(we.cdf(6.0).unwrap_or(0.0) - we.cdf(4.0).unwrap_or(0.0)),
        "~60%",
    );
    compare_line(
        "intervals shorter than 5 min",
        pct(wd.cdf(5.0 / 60.0).unwrap_or(0.0)),
        "~5%",
    );
    let path = write_csv("fig6", "hours,weekday_cdf,weekend_cdf", &csv).expect("csv");
    println!("wrote {}", path.display());
}

/// Figure 7: unavailability occurrences per hour of day.
pub fn fig7(quick: bool) {
    banner("Figure 7 — unavailability occurrences per hour of day (testbed-wide)");
    let trace = standard_trace(quick);
    let h = verified_streaming(&trace).hourly();

    let mut csv = Vec::new();
    for (dt, g) in [
        (DayType::Weekday, &h.weekday),
        (DayType::Weekend, &h.weekend),
    ] {
        println!("\n{dt}s (mean [min-max], bar scaled to 20):");
        let mut table = TextTable::new(&["hour", "mean", "range", ""]);
        for (hour, s) in g.iter() {
            table.row(vec![
                format!("{:02}-{:02}", hour, hour + 1),
                format!("{:.1}", s.mean()),
                format!("[{:.0}-{:.0}]", s.min(), s.max()),
                bar(s.mean(), 20.0, 30),
            ]);
            csv.push(format!(
                "{dt},{hour},{:.3},{:.0},{:.0}",
                s.mean(),
                s.min(),
                s.max()
            ));
        }
        table.print();
    }
    println!();
    compare_line(
        "4-5 AM spike (updatedb on every machine)",
        format!("{:.1}", h.weekday.get(&4).map(|s| s.mean()).unwrap_or(0.0)),
        "20 (= machine count)",
    );
    println!("expected shape: low at night, ramp after 10 AM, weekday > weekend at the same hour.");
    let path = write_csv("fig7", "day_type,hour,mean,min,max", &csv).expect("csv");
    println!("wrote {}", path.display());
}

/// The §5.3 regularity claim: daily patterns repeat.
pub fn regularity(quick: bool) {
    banner("Regularity (§5.3) — are daily patterns comparable to recent history?");
    let trace = standard_trace(quick);
    let r = verified_streaming(&trace).regularity();
    compare_line(
        "mean pairwise weekday correlation",
        format!("{:.2}", r.weekday_correlation),
        "high (patterns repeat)",
    );
    compare_line(
        "mean pairwise weekend correlation",
        format!("{:.2}", r.weekend_correlation),
        "high (patterns repeat)",
    );
    compare_line(
        "mean per-hour weekday CV",
        format!("{:.2}", r.weekday_mean_cv),
        "small deviations",
    );
    compare_line(
        "mean per-hour weekend CV",
        format!("{:.2}", r.weekend_mean_cv),
        "small deviations",
    );
    println!(
        "interpretation: per-hour failure counts correlate strongly across days \
         of the same type, which is exactly what makes the history-window \
         predictor (experiment `predict`) work."
    );
}

/// Writes the full trace to results/ in both formats.
pub fn dump_trace(quick: bool) {
    banner("Trace dump — the three-month testbed trace on disk");
    let trace = standard_trace(quick);
    let dir = crate::report::results_dir();
    std::fs::create_dir_all(&dir).expect("mkdir results");
    let jsonl = dir.join("trace.jsonl");
    let csv = dir.join("trace.csv");
    trace
        .write_jsonl(std::fs::File::create(&jsonl).expect("create"))
        .expect("write jsonl");
    trace
        .write_csv(std::fs::File::create(&csv).expect("create"))
        .expect("write csv");
    println!(
        "wrote {} ({} records) and {}",
        jsonl.display(),
        trace.records.len(),
        csv.display()
    );
}
