//! `fgcs-exp` — regenerates every table and figure of the ICPP'06 FGCS
//! paper, plus the extension experiments, printing paper-vs-measured
//! comparisons and writing CSV series under `results/`.
//!
//! ```text
//! fgcs-exp <experiment> [--quick]
//! fgcs-exp all [--quick]
//! ```
//!
//! Experiments: `table1`, `fig1a`, `fig1b`, `fig2`, `fig3`, `fig4`,
//! `fig5`, `calibrate`, `table2`, `fig6`, `fig7`, `regularity`,
//! `predict`, `proactive`, `ablation`, `trace`.

mod contention_exps;
mod extension_exps;
mod fault_exps;
mod fleet_exps;
mod predict_exps;
mod report;
mod sched_exps;
mod serve_exps;
mod trace_exps;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "Table 1: resource usage of tested applications"),
    (
        "fig1a",
        "Figure 1(a): host CPU reduction vs LH, equal priority",
    ),
    (
        "fig1b",
        "Figure 1(b): host CPU reduction vs LH, guest nice 19",
    ),
    (
        "calibrate",
        "Derive Th1/Th2 from the sweeps (the paper's reading of Fig 1)",
    ),
    ("fig2", "Figure 2: reduction vs LH x guest priority"),
    (
        "fig3",
        "Figure 3: guest CPU usage, equal vs lowest priority",
    ),
    (
        "fig4",
        "Figure 4: SPEC x Musbus slowdown and thrashing on 384 MB Solaris",
    ),
    ("fig5", "Figure 5: the five-state availability model"),
    (
        "table2",
        "Table 2: unavailability by cause over the 3-month testbed",
    ),
    ("fig6", "Figure 6: CDF of availability-interval lengths"),
    (
        "fig7",
        "Figure 7: unavailability occurrences per hour of day",
    ),
    ("regularity", "X1 (§5.3): daily patterns repeat across days"),
    ("predict", "X2 (§6): availability predictors vs baselines"),
    ("proactive", "X3 (§1): proactive vs oblivious job placement"),
    (
        "ablation",
        "X4: two-threshold managed policy vs static priorities",
    ),
    ("policies", "X5: the full §3.2.2 policy design space"),
    (
        "scenarios",
        "X6 (§6): predictability across testbed scenarios",
    ),
    ("cluster", "X7: placement strategies on a live FGCS cluster"),
    (
        "rules",
        "X8: ablation of the 1-min spike tolerance and 5-min harvest delay",
    ),
    (
        "depth",
        "X9: history depth and trimming ablation for the predictor",
    ),
    ("seeds", "X10: Table 2 statistics across independent seeds"),
    (
        "faults",
        "X11: Table 2 / Figure 6 drift under injected measurement faults",
    ),
    (
        "serve",
        "X12: fgcs-service throughput, query latency, overload backpressure (not in `all`)",
    ),
    (
        "sched",
        "X14: fgcs-sched prediction-driven placement vs baselines on a live cluster (not in `all`)",
    ),
    (
        "fleet",
        "X15: 100k-machine heterogeneous fleet through the streaming path (not in `all`)",
    ),
    (
        "trace",
        "Dump the full testbed trace to results/ (JSONL + CSV)",
    ),
];

fn usage() -> ! {
    eprintln!("usage: fgcs-exp <experiment|all> [--quick]\n\nexperiments:");
    for (name, desc) in EXPERIMENTS {
        eprintln!("  {name:<12} {desc}");
    }
    eprintln!("\n--quick runs reduced-scale versions (for smoke tests).");
    std::process::exit(2);
}

fn run(name: &str, quick: bool) {
    match name {
        "table1" => contention_exps::table1(quick),
        "fig1a" => contention_exps::fig1(0, quick),
        "fig1b" => contention_exps::fig1(19, quick),
        "calibrate" => contention_exps::calibrate_exp(quick),
        "fig2" => contention_exps::fig2(quick),
        "fig3" => contention_exps::fig3(quick),
        "fig4" => contention_exps::fig4(quick),
        "fig5" => contention_exps::fig5(),
        "ablation" => contention_exps::ablation(quick),
        "policies" => extension_exps::policies(quick),
        "scenarios" => extension_exps::scenario_study(quick),
        "cluster" => extension_exps::cluster_study(quick),
        "rules" => extension_exps::detector_rules(quick),
        "depth" => predict_exps::depth(quick),
        "seeds" => extension_exps::seeds(quick),
        "faults" => fault_exps::fault_matrix(quick),
        "serve" => serve_exps::serve(quick),
        "sched" => sched_exps::sched(quick),
        "fleet" => fleet_exps::fleet(quick),
        "table2" => trace_exps::table2(quick),
        "fig6" => trace_exps::fig6(quick),
        "fig7" => trace_exps::fig7(quick),
        "regularity" => trace_exps::regularity(quick),
        "trace" => trace_exps::dump_trace(quick),
        "predict" => predict_exps::predict(quick),
        "proactive" => predict_exps::proactive(quick),
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if names.len() != 1 {
        usage();
    }
    let name = names[0].as_str();
    let t0 = std::time::Instant::now();
    if name == "all" {
        for (n, _) in EXPERIMENTS {
            // `serve` measures wall-clock throughput/latency, so its
            // outputs are not byte-reproducible golden files like the
            // other CSVs; run it explicitly (`fgcs-exp serve`), the way
            // `cargo bench` regenerates BENCH_sim.json. `sched` splices
            // a gate into BENCH_serve.json too, so it is likewise run
            // explicitly (`fgcs-exp sched`). `fleet` regenerates
            // BENCH_fleet.json (wall-clock and RSS measurements), so it
            // follows the same rule (`fgcs-exp fleet`).
            if *n != "serve" && *n != "sched" && *n != "fleet" {
                run(n, quick);
            }
        }
    } else {
        run(name, quick);
    }
    println!("\n[{name} done in {:.1?}]", t0.elapsed());
}
