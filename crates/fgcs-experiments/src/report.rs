//! Report formatting and CSV output for the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Where CSV outputs land.
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Writes `rows` (already comma-joined) under `results/<name>.csv` with
/// the given header. Creates the directory as needed.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(path)
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a key/value comparison line: measured vs the paper's value.
pub fn compare_line(what: &str, measured: impl std::fmt::Display, paper: &str) {
    println!("{what:<44} measured: {measured:<18} paper: {paper}");
}

/// A plain fixed-width text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders to stdout with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            println!("{}", out.trim_end());
        };
        line(&self.header);
        line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats seconds as hours with two decimals.
pub fn hours(secs: f64) -> String {
    format!("{:.2}h", secs / 3600.0)
}

/// Writes a tiny ASCII bar for quick visual comparison of a series.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Ensures `path`'s parent exists and writes `contents`.
#[allow(dead_code)] // used by future experiment outputs
pub fn write_text(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, contents)
}
