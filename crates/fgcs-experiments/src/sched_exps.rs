//! X14: the prediction-driven guest scheduler (`fgcs-sched`) evaluated
//! over a live availability cluster.
//!
//! Replays a heterogeneous testbed lab through a 2-shard in-process
//! cluster (the monitor stream the real iShare deployment would have
//! produced), then runs three [`fgcs_sched::Scheduler`] instances in
//! lockstep over the *same* job arrivals and the *same* cluster state:
//!
//! * **predictive** — placement ranked by predicted time-to-failure
//!   from the cluster's online model, plus the SLO migration sweep;
//! * **greedy** — fewest recorded occurrences wins, no predictions;
//! * **random** — any harvestable machine, no predictions.
//!
//! All three see identical revocations (the service-side `harvestable`
//! bit going false under a guest) and identical fairshare quotas, so
//! the comparison is paired. The run *asserts* the tentpole claim —
//! predictive strictly fewer evictions and strictly less wasted work
//! than both baselines at equal-or-better completed guest work, with
//! zero fairshare violations anywhere — and writes
//! `results/sched_eval.csv` plus a flat `"sched"` gate object into
//! `BENCH_serve.json` for `scripts/ci.sh`.

#[cfg(target_os = "linux")]
pub fn sched(quick: bool) {
    imp::sched(quick);
}

#[cfg(not(target_os = "linux"))]
pub fn sched(_quick: bool) {
    println!("X14 needs the Linux cluster router (epoll sockets); skipping");
}

#[cfg(target_os = "linux")]
mod imp {
    use std::time::Duration;

    use fgcs_sched::{AvailabilitySource, ClusterSource, Policy, SchedConfig, Scheduler};
    use fgcs_service::cluster::{ClusterClient, ClusterConfig, ShardSpec};
    use fgcs_service::{Backend, Server, ServiceConfig};
    use fgcs_stats::rng::Rng;
    use fgcs_testbed::json::ObjWriter;
    use fgcs_testbed::lab::LabConfig;
    use fgcs_testbed::MachinePlan;
    use fgcs_wire::{Frame, SampleLoad, WireSample};

    use crate::report::{banner, hours, write_csv, TextTable};

    /// Scheduler tick, seconds of trace time. Coarser than the monitor
    /// period (revocations are seen at tick granularity, like a real
    /// scheduler polling cluster stats) but no coarser than the
    /// detector's 5-minute harvest delay, so occurrences cannot recover
    /// unseen between ticks; much finer than the checkpoint interval,
    /// so evictions still lose real progress.
    const TICK: u64 = 300;
    /// Jobs checkpoint on the hour; an eviction loses up to an hour.
    const CHECKPOINT: u64 = 3_600;
    /// A controlled migration costs this much re-run work, seconds.
    const MIGRATION_COST: u64 = 300;

    struct Arrival {
        at: u64,
        user: u32,
        work: u64,
    }

    /// One policy under test: its scheduler and whether it may consult
    /// the cluster's predictor (survival queries + migration sweep).
    struct Contender {
        policy: Policy,
        sched: Scheduler,
        predicts: bool,
        rejected: u64,
    }

    fn wire(s: &fgcs_testbed::lab::LoadSample) -> WireSample {
        WireSample {
            t: s.t,
            load: SampleLoad::Direct(s.host_load),
            host_resident_mb: s.host_resident_mb,
            alive: s.alive,
        }
    }

    /// Streams every machine's samples in `[lo, hi)` through the
    /// router, then blocks until both shards have applied them.
    fn stream_span(router: &mut ClusterClient, waves: &[Vec<WireSample>], lo: u64, hi: u64) {
        let mut last_t = 0u64;
        for (i, wave) in waves.iter().enumerate() {
            let machine = i as u32 + 1;
            let chunk: Vec<WireSample> = wave
                .iter()
                .filter(|s| s.t >= lo && s.t < hi)
                .copied()
                .collect();
            let Some(tail) = chunk.last() else { continue };
            last_t = last_t.max(tail.t);
            for batch in chunk.chunks(1_000) {
                let reply = router
                    .ingest(machine, batch.to_vec())
                    .unwrap_or_else(|e| panic!("X14: ingest machine {machine}: {e}"));
                assert!(matches!(reply, Frame::Ack { .. }), "X14: {reply:?}");
            }
        }
        // The ingest queue is asynchronous: wait until every shard has
        // drained and every machine's detector reached the span end.
        'shards: for s in 0..router.shard_count() {
            for _ in 0..4_000 {
                let stats = router.stats_of(s).expect("X14: shard stats");
                let done =
                    stats.queue_depth == 0 && stats.machines.iter().all(|m| m.last_t >= last_t);
                if done {
                    continue 'shards;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            panic!("X14: shard {s} never caught up to t = {last_t}");
        }
    }

    /// One scheduler tick, the serve loop's exact order: revocations,
    /// progress, migration sweep, placement.
    fn tick(
        c: &mut Contender,
        now: u64,
        views: &[fgcs_sched::MachineView],
        source: &mut ClusterSource,
    ) {
        for (machine, _) in c.sched.hosts() {
            let gone = !views.iter().any(|v| v.machine == machine && v.harvestable);
            if gone {
                c.sched.on_unavailable(machine, now);
            }
        }
        c.sched.advance(now);
        if c.predicts {
            let mut surv = |m: u32, w: u64| source.survival(m, w).unwrap_or(1.0);
            c.sched.check_migrations(now, &mut surv);
            c.sched.place(now, views, &mut surv);
        } else {
            // Predictionless: no migration sweep (survival 1.0 never
            // trips the trigger) and placement never queries the model.
            let mut blind = |_: u32, _: u64| 1.0;
            c.sched.place(now, views, &mut blind);
        }
    }

    /// Splices `{"sched": obj}` into cwd `BENCH_serve.json`, keeping
    /// every other section byte-for-byte (the fgcs-cluster gate does
    /// the same dance for `"cluster"`).
    fn splice_bench(obj: String) {
        let path = "BENCH_serve.json";
        let base = std::fs::read_to_string(path).unwrap_or_else(|_| "{}".to_string());
        let out = fgcs_testbed::json::splice_key(&base, "sched", &obj)
            .unwrap_or_else(|e| panic!("{path}: {e}"));
        std::fs::write(path, out).expect("write BENCH_serve.json");
        println!("spliced sched gate into {path}");
    }

    pub fn sched(quick: bool) {
        banner("Scheduler (X14) — prediction-driven placement + SLO migration vs baselines");
        // The lab the paper's future-work section anticipates:
        // "testbeds with different patterns of host workloads". Odd
        // machines run the student-lab occupancy shifted by 12 hours
        // (an opposite-timezone / night-shift fleet), so both machine
        // groups rack up *similar occurrence totals* — a pure count
        // (greedy) cannot tell them apart, but the hour-of-day model
        // knows which half is quiet right now. A mild busyness spread
        // keeps greedy meaningfully better than random.
        let (train_days, eval_days) = if quick { (7u64, 2u64) } else { (14u64, 7u64) };
        let lab = LabConfig {
            machine_busyness_spread: 0.4,
            machines: if quick { 10 } else { 20 },
            days: (train_days + eval_days) as usize,
            ..LabConfig::default()
        };
        let mut night = lab.clone();
        for h in 0..24 {
            night.weekday_occupancy[h] = lab.weekday_occupancy[(h + 12) % 24];
            night.weekend_occupancy[h] = lab.weekend_occupancy[(h + 12) % 24];
        }
        let users: &[(u32, u64)] = &[(1, 2), (2, 2)];

        println!(
            "lab: {} machines x {} days (train {train_days}, eval {eval_days}), \
             spread {}, odd machines on the opposite shift, {} users of base quota 2",
            lab.machines,
            lab.days,
            lab.machine_busyness_spread,
            users.len()
        );

        // The monitor streams, exactly what the testbed tracer detects.
        let waves: Vec<Vec<WireSample>> = (0..lab.machines)
            .map(|i| {
                let cfg = if i % 2 == 0 { &lab } else { &night };
                MachinePlan::generate(cfg, i)
                    .samples()
                    .map(|s| wire(&s))
                    .collect()
            })
            .collect();

        // A 2-shard cluster of real availability servers, machine
        // ownership by rendezvous hashing.
        let shard = |name: &str| -> (Server, ShardSpec) {
            let server = Server::start(ServiceConfig {
                backend: Backend::Threads,
                ..Default::default()
            })
            .expect("X14: shard starts");
            let spec = ShardSpec {
                name: name.to_string(),
                primary_addr: server.local_addr().to_string(),
                follower_addr: None,
            };
            (server, spec)
        };
        let (shard0, spec0) = shard("shard-0");
        let (shard1, spec1) = shard("shard-1");
        let mut router =
            ClusterClient::connect(ClusterConfig::new(vec![spec0, spec1])).expect("X14: router");

        // Train: the prefix days flow through the cluster before any
        // guest arrives, so the online model has history to predict on.
        let train_end = train_days * 86_400;
        let span = lab.span_secs();
        stream_span(&mut router, &waves, 0, train_end);
        let mut source = ClusterSource::new(router);

        // The paired job workload: Poisson-ish arrivals on the hour,
        // multi-hour jobs, identical for every policy.
        let mut wl = Rng::for_stream(lab.seed, 0xeca1);
        let mut arrivals: Vec<Arrival> = Vec::new();
        let mut t = train_end;
        while t < span {
            for &(user, _) in users {
                if wl.chance(0.30) {
                    arrivals.push(Arrival {
                        at: t,
                        user,
                        work: wl.range_u64(1_800, 4 * 3_600),
                    });
                }
            }
            t += 3_600;
        }
        println!(
            "workload: {} job arrivals over the eval window",
            arrivals.len()
        );

        let contender = |policy: Policy, predicts: bool| {
            let mut sched = Scheduler::new(SchedConfig {
                policy,
                pool_extra: 2,
                checkpoint_every: CHECKPOINT,
                migration_cost: MIGRATION_COST,
                // Look a full hour ahead: evacuating before the morning
                // rush costs MIGRATION_COST but saves a checkpoint's
                // worth of lost progress.
                migrate_lookahead: 1_800,
                ..SchedConfig::default()
            });
            for &(user, base) in users {
                sched.add_user(user, base);
            }
            Contender {
                policy,
                sched,
                predicts,
                rejected: 0,
            }
        };
        let mut contenders = [
            contender(Policy::Predictive, true),
            contender(Policy::Greedy, false),
            contender(Policy::Random, false),
        ];

        // The lockstep replay: each tick streams the next slice of
        // monitor samples, reads the cluster once, and drives all
        // three schedulers off that one snapshot.
        let mut arrival_idx = 0;
        let mut shared_mid = false;
        let mut now = train_end;
        while now < span {
            let next = (now + TICK).min(span);
            stream_span(source.client_mut(), &waves, now, next);
            now = next;
            let views = source.machines().expect("X14: cluster views");

            // Halfway through, user 1 borrows an extra slot from the
            // pool — the fairshare path under real load.
            if !shared_mid && now >= train_end + eval_days * 43_200 {
                shared_mid = true;
                for c in contenders.iter_mut() {
                    let got = c.sched.share_request(1, 1);
                    assert_eq!(got, 1, "X14: pool of 2 must grant 1 extra");
                }
            }

            while arrival_idx < arrivals.len() && arrivals[arrival_idx].at < now {
                let a = &arrivals[arrival_idx];
                for c in contenders.iter_mut() {
                    if c.sched.submit(a.user, a.work, now).is_err() {
                        c.rejected += 1;
                    }
                }
                arrival_idx += 1;
            }
            for c in contenders.iter_mut() {
                tick(c, now, &views, &mut source);
            }
        }

        // Drain: the trace is over, so the cluster state is frozen (no
        // further revocations) — let every policy finish its backlog so
        // throughput compares completed work on the *same* job set
        // rather than whoever was luckier with the last stragglers.
        let views = source.machines().expect("X14: final cluster views");
        for _ in 0..(48 * 3_600 / TICK) {
            if contenders.iter().all(|c| {
                let s = c.sched.stats();
                s.queued == 0 && s.running == 0
            }) {
                break;
            }
            now += TICK;
            for c in contenders.iter_mut() {
                c.sched.advance(now);
                let mut blind = |_: u32, _: u64| 1.0;
                c.sched.place(now, &views, &mut blind);
            }
        }

        // Report and assert.
        let mut table = TextTable::new(&[
            "policy",
            "completed",
            "completed work",
            "evictions",
            "migrations",
            "wasted",
            "rejected",
            "quota viol.",
        ]);
        let mut csv = Vec::new();
        for c in &contenders {
            let s = c.sched.stats();
            table.row(vec![
                c.policy.to_string(),
                format!("{}/{}", s.completed, s.submitted),
                hours(c.sched.completed_work() as f64),
                s.evictions.to_string(),
                s.migrations.to_string(),
                hours(s.wasted_secs as f64),
                c.rejected.to_string(),
                c.sched.quota_violations().to_string(),
            ]);
            csv.push(format!(
                "{},{},{},{},{},{},{},{},{}",
                c.policy,
                s.submitted,
                s.completed,
                c.sched.completed_work(),
                s.evictions,
                s.migrations,
                s.wasted_secs,
                c.rejected,
                c.sched.quota_violations(),
            ));
        }
        table.print();

        for c in &contenders {
            assert_eq!(
                c.sched.quota_violations(),
                0,
                "X14: fairshare quotas must never be exceeded ({})",
                c.policy
            );
            for &(user, base) in users {
                let ceiling = base + if user == 1 { 1 } else { 0 };
                assert!(
                    c.sched.peak_running(user) <= ceiling,
                    "X14: user {user} peaked above its allowance under {}",
                    c.policy
                );
            }
            let s = c.sched.stats();
            assert_eq!(
                s.submitted,
                s.completed + s.queued + s.running,
                "X14: job conservation broke under {}",
                c.policy
            );
        }
        let [pred, greedy, random] = &contenders;
        let (ps, gs, rs) = (
            pred.sched.stats(),
            greedy.sched.stats(),
            random.sched.stats(),
        );
        assert!(
            ps.evictions < gs.evictions && ps.evictions < rs.evictions,
            "X14: predictive must evict strictly less (pred {} vs greedy {} / random {})",
            ps.evictions,
            gs.evictions,
            rs.evictions
        );
        assert!(
            ps.wasted_secs < gs.wasted_secs && ps.wasted_secs < rs.wasted_secs,
            "X14: predictive must waste strictly less (pred {} vs greedy {} / random {})",
            ps.wasted_secs,
            gs.wasted_secs,
            rs.wasted_secs
        );
        assert!(
            pred.sched.completed_work() >= greedy.sched.completed_work()
                && pred.sched.completed_work() >= random.sched.completed_work(),
            "X14: predictive throughput must not regress (pred {} vs greedy {} / random {})",
            pred.sched.completed_work(),
            greedy.sched.completed_work(),
            random.sched.completed_work()
        );
        println!(
            "\npredictive: {} evictions / {} wasted vs greedy {} / {} and random {} / {} \
             (strictly better on both, throughput >= both, 0 quota violations)",
            ps.evictions,
            hours(ps.wasted_secs as f64),
            gs.evictions,
            hours(gs.wasted_secs as f64),
            rs.evictions,
            hours(rs.wasted_secs as f64)
        );

        let path = write_csv(
            "sched_eval",
            "policy,submitted,completed,completed_work_secs,evictions,migrations,\
             wasted_secs,rejected,quota_violations",
            &csv,
        )
        .expect("csv");
        println!("wrote {}", path.display());

        let mut w = ObjWriter::new();
        w.str(
            "description",
            "X14: fgcs-sched over a live 2-shard cluster replaying the heterogeneous \
             testbed lab; three policies in lockstep over identical arrivals, \
             revocations from the service-side harvestable bit, fairshare quotas \
             enforced; predictive = time-to-failure placement + SLO migration",
        )
        .str(
            "command",
            "cargo run --release -p fgcs-experiments --bin fgcs-exp -- sched",
        )
        .u64("machines", lab.machines as u64)
        .u64("train_days", train_days)
        .u64("eval_days", eval_days)
        .u64("jobs", arrivals.len() as u64)
        .u64("pred_evictions", ps.evictions)
        .u64("pred_migrations", ps.migrations)
        .u64("pred_wasted_secs", ps.wasted_secs)
        .u64("pred_completed", ps.completed)
        .u64("pred_completed_work_secs", pred.sched.completed_work())
        .u64("greedy_evictions", gs.evictions)
        .u64("greedy_wasted_secs", gs.wasted_secs)
        .u64("greedy_completed", gs.completed)
        .u64("greedy_completed_work_secs", greedy.sched.completed_work())
        .u64("rand_evictions", rs.evictions)
        .u64("rand_wasted_secs", rs.wasted_secs)
        .u64("rand_completed", rs.completed)
        .u64("rand_completed_work_secs", random.sched.completed_work())
        .u64(
            "quota_violations",
            contenders.iter().map(|c| c.sched.quota_violations()).sum(),
        );
        splice_bench(w.finish());

        drop(source);
        shard0.shutdown();
        shard1.shutdown();
    }
}
