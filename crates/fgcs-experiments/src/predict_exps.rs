//! Regenerators for the prediction extension (X2) and the proactive
//! scheduling experiment (X3).

use fgcs_predict::eval::{evaluate, standard_predictors, EvalConfig};
use fgcs_predict::predictor::MachineHourlyPredictor;
use fgcs_predict::proactive::{compare, ProactiveConfig};

use crate::report::{banner, compare_line, write_csv, TextTable};
use crate::trace_exps::standard_trace;

/// X2: predictor evaluation across window lengths.
pub fn predict(quick: bool) {
    banner("Prediction (X2) — history-window scheme vs baselines");
    let trace = standard_trace(quick);
    let mut predictors = standard_predictors();
    let cfg = EvalConfig::default();
    let rows = evaluate(&trace, &mut predictors, &cfg);

    let mut table = TextTable::new(&["window", "predictor", "Brier", "accuracy", "base rate"]);
    let mut csv = Vec::new();
    for &w in &cfg.windows {
        let mut window_rows: Vec<_> = rows.iter().filter(|r| r.window == w).collect();
        window_rows.sort_by(|a, b| a.brier.partial_cmp(&b.brier).expect("no NaN"));
        for r in window_rows {
            table.row(vec![
                format!("{:.1}h", w as f64 / 3600.0),
                r.predictor.to_string(),
                format!("{:.4}", r.brier),
                format!("{:.1}%", r.accuracy * 100.0),
                format!("{:.1}%", r.base_rate * 100.0),
            ]);
            csv.push(format!(
                "{w},{},{:.5},{:.4},{:.4},{}",
                r.predictor, r.brier, r.accuracy, r.base_rate, r.queries
            ));
        }
    }
    table.print();
    println!(
        "\nthe paper's §5.3 claim implies history-window prediction should rank \
         at or near the top at every window length (rows sorted by Brier, \
         lower is better)."
    );
    let path = write_csv(
        "predict",
        "window_secs,predictor,brier,accuracy,base_rate,queries",
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}

/// X3: proactive vs oblivious guest-job placement.
///
/// Runs on a *heterogeneous* lab (busyness spread 0.6): prediction-driven
/// placement needs machines that actually differ, which the paper's
/// future-work section anticipates ("testbeds with different patterns of
/// host workloads").
pub fn proactive(quick: bool) {
    banner("Proactive scheduling (X3) — prediction-driven placement vs oblivious");
    let mut tb = fgcs_testbed::runner::TestbedConfig::default();
    if quick {
        tb.lab.machines = 8;
        tb.lab.days = 21;
    }
    tb.lab.machine_busyness_spread = 0.6;
    let trace = fgcs_testbed::runner::run_testbed(&tb);
    let mut predictor = MachineHourlyPredictor::default();
    let cfg = ProactiveConfig {
        jobs: if quick { 120 } else { 400 },
        ..Default::default()
    };
    let (obl, pro) = compare(&trace, &mut predictor, 0.6, &cfg);

    let mut table = TextTable::new(&["policy", "mean response", "mean failures/job", "timeouts"]);
    for o in [&obl, &pro] {
        table.row(vec![
            o.policy.to_string(),
            format!("{:.2}h", o.mean_response / 3600.0),
            format!("{:.2}", o.mean_failures),
            o.timed_out.to_string(),
        ]);
    }
    table.print();
    let speedup = obl.mean_response / pro.mean_response.max(1.0);
    compare_line(
        "response-time improvement (oblivious/proactive)",
        format!("{speedup:.2}x"),
        "\"significantly improved\" [10,18]",
    );
    // Gang jobs: the paper's motivating workload — groups of tasks that
    // must all complete (response = makespan).
    use fgcs_predict::proactive::{compare_gang, GangConfig};
    let gang_cfg = GangConfig {
        base: ProactiveConfig {
            jobs: if quick { 80 } else { 250 },
            job_secs: (1800, 3 * 3600),
            ..Default::default()
        },
        tasks: 4,
    };
    let mut predictor2 = MachineHourlyPredictor::default();
    let (gobl, gpro) = compare_gang(&trace, &mut predictor2, 0.6, &gang_cfg);
    println!("\ngang jobs (4 tasks each, response = makespan over the group):");
    let mut gtable = TextTable::new(&["policy", "mean makespan", "mean failures/task", "timeouts"]);
    for o in [&gobl, &gpro] {
        gtable.row(vec![
            o.policy.to_string(),
            format!("{:.2}h", o.mean_response / 3600.0),
            format!("{:.2}", o.mean_failures),
            o.timed_out.to_string(),
        ]);
    }
    gtable.print();
    compare_line(
        "gang makespan improvement",
        format!("{:.2}x", gobl.mean_response / gpro.mean_response.max(1.0)),
        "proactive advantage persists at gang scale",
    );

    let csv = vec![
        format!(
            "single,oblivious,{:.2},{:.4},{}",
            obl.mean_response, obl.mean_failures, obl.timed_out
        ),
        format!(
            "single,proactive,{:.2},{:.4},{}",
            pro.mean_response, pro.mean_failures, pro.timed_out
        ),
        format!(
            "gang4,oblivious,{:.2},{:.4},{}",
            gobl.mean_response, gobl.mean_failures, gobl.timed_out
        ),
        format!(
            "gang4,proactive,{:.2},{:.4},{}",
            gpro.mean_response, gpro.mean_failures, gpro.timed_out
        ),
    ];
    let path = write_csv(
        "proactive",
        "shape,policy,mean_response_secs,mean_failures,timeouts",
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}

/// X9: how much history does the history-window predictor need, and
/// does the irregular-data trimming help? ("An aggressive prediction
/// algorithm would accommodate the small deviations ... One approach is
/// to use statistics on history trace to alleviate the effects of
/// 'irregular' data", §5.3.)
pub fn depth(quick: bool) {
    use fgcs_predict::predictor::HistoryWindowPredictor;
    banner("Prediction depth (X9) — history days and trimming");
    let trace = standard_trace(quick);
    let cfg = EvalConfig {
        windows: vec![2 * 3600],
        ..Default::default()
    };

    let mut table = TextTable::new(&["history days", "Brier (trim)", "Brier (no trim)"]);
    let mut csv = Vec::new();
    for days in [1usize, 2, 3, 5, 10, 15, 20] {
        let mut preds: Vec<Box<dyn fgcs_predict::AvailabilityPredictor>> = vec![
            Box::new(
                HistoryWindowPredictor::new()
                    .with_history_days(days)
                    .with_trim(true),
            ),
            Box::new(
                HistoryWindowPredictor::new()
                    .with_history_days(days)
                    .with_trim(false),
            ),
        ];
        let rows = evaluate(&trace, &mut preds, &cfg);
        let trim = rows
            .iter()
            .find(|r| r.predictor == "history-window")
            .unwrap()
            .brier;
        let no_trim = rows
            .iter()
            .find(|r| r.predictor == "history-no-trim")
            .unwrap()
            .brier;
        table.row(vec![
            days.to_string(),
            format!("{trim:.4}"),
            format!("{no_trim:.4}"),
        ]);
        csv.push(format!("{days},{trim:.5},{no_trim:.5}"));
    }
    table.print();
    println!(
        "\none same-type day of history is noisy; a handful of days nearly \
         saturates the score — recent history really is all the predictor \
         needs, as the paper's regularity result implies."
    );
    let path = write_csv(
        "predict_depth",
        "history_days,brier_trim,brier_no_trim",
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
