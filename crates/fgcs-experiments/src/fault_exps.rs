//! X11: the §5 trace analyses re-run under injected measurement faults.
//!
//! The paper's numbers came from a real, imperfect deployment; this
//! experiment measures how far Table 2 and Figure 6 drift as the
//! measurement pipeline degrades, and reconciles the pipeline's quality
//! accounting against the injector's ground truth at every fault scale.

use fgcs_core::model::FailureCause;
use fgcs_faults::corrupt::corrupt_text;
use fgcs_faults::FaultConfig;
use fgcs_testbed::analysis;
use fgcs_testbed::runner::{run_testbed, run_testbed_faulty, SupervisorConfig, TestbedConfig};
use fgcs_testbed::trace::Trace;

use crate::report::{banner, compare_line, pct, write_csv, TextTable};

/// Fleet-wide fraction of occurrences per cause (S3, S4, S5).
fn cause_fractions(trace: &Trace) -> (f64, f64, f64) {
    let n = trace.records.len().max(1) as f64;
    let frac =
        |cause: FailureCause| trace.records.iter().filter(|r| r.cause == cause).count() as f64 / n;
    (
        frac(FailureCause::CpuContention),
        frac(FailureCause::MemoryThrashing),
        frac(FailureCause::Revocation),
    )
}

/// X11: Table 2 / Figure 6 drift under increasing fault rates.
pub fn fault_matrix(quick: bool) {
    banner("X11 — §5 analyses under injected measurement faults");
    let mut cfg = TestbedConfig::default();
    if quick {
        cfg.lab.machines = 8;
        cfg.lab.days = 21;
    }
    let sup = SupervisorConfig::default();
    let expected_samples = cfg.lab.span_secs() / cfg.lab.sample_period;

    let baseline = run_testbed(&cfg);
    let base_iv = analysis::intervals(&baseline);
    let (base_cpu, base_mem, base_urr) = cause_fractions(&baseline);

    // The identity injection must reproduce the clean pipeline exactly —
    // this is the byte-identity guarantee the whole harness rests on.
    let (identity, q0) = run_testbed_faulty(&cfg, &FaultConfig::off(cfg.lab.seed), &sup);
    assert!(
        identity == baseline,
        "identity injection diverged from the clean testbed"
    );
    assert!(q0.is_clean(), "identity injection reported faults: {q0}");
    println!("identity check: zero-rate injection is bit-identical to the clean run");

    let scales = [0.0, 0.5, 1.0, 2.0, 4.0];
    let mut table = TextTable::new(&[
        "scale",
        "records",
        "cpu %",
        "mem %",
        "urr %",
        "wd mean h",
        "we mean h",
        "censored h",
        "corrupt",
    ]);
    let mut csv = Vec::new();
    for &scale in &scales {
        let faults = FaultConfig::noisy(cfg.lab.seed).scaled(scale);
        let (trace, quality) = run_testbed_faulty(&cfg, &faults, &sup);
        let totals = quality.totals();

        // Reconciliation 1: for every machine the supervisor did not
        // abandon, the injector's ground-truth sample accounting and the
        // supervisor's must balance exactly.
        for m in quality.machines.values() {
            if m.gave_up {
                continue;
            }
            let consumed = m.samples_used + m.out_of_order + m.lost_in_crash;
            let delivered = expected_samples + m.duplicated - m.dropped - m.lost_in_restart;
            assert_eq!(
                consumed, delivered,
                "machine {}: supervisor accounting does not reconcile with the injector",
                m.machine
            );
        }

        // Reconciliation 2: corrupt the serialized trace and check the
        // recovering loader reports exactly the injected damage, with
        // every surviving record intact.
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).expect("serialize");
        let text = String::from_utf8(buf).expect("utf8");
        let (damaged, creport) = corrupt_text(&text, &faults, 0);
        let (reloaded, lq) =
            Trace::read_jsonl_recovering(damaged.as_bytes()).expect("recovering load");
        assert_eq!(
            lq.corrupt_lines, creport.lines_corrupted,
            "loader must count exactly the injected corruption"
        );
        assert_eq!(
            reloaded.records.len() + lq.corrupt_lines as usize,
            trace.records.len(),
            "every record either survives or is counted"
        );

        let (cpu, mem, urr) = cause_fractions(&trace);
        let iv = analysis::intervals_censored(&trace, &quality);
        let censored_h = totals.censored_secs as f64 / 3600.0;
        table.row(vec![
            format!("{scale:.1}"),
            trace.records.len().to_string(),
            pct(cpu),
            pct(mem),
            pct(urr),
            format!("{:.2}", iv.weekday.mean()),
            format!("{:.2}", iv.weekend.mean()),
            format!("{censored_h:.1}"),
            lq.corrupt_lines.to_string(),
        ]);
        csv.push(format!(
            "{scale},{},{cpu:.4},{mem:.4},{urr:.4},{:.4},{:.4},{},{},{},{},{},{}",
            trace.records.len(),
            iv.weekday.mean(),
            iv.weekend.mean(),
            totals.censored_secs,
            lq.corrupt_lines,
            totals.dropped,
            totals.restarts,
            totals.crashes,
            totals.gave_up,
        ));
        if scale == 0.0 {
            assert!(quality.is_clean(), "scale 0 must be the identity");
        } else {
            println!("scale {scale:.1}: {quality}");
        }
        if (scale - 4.0).abs() < f64::EPSILON {
            compare_line(
                "cause-mix drift at 4x (pp, cpu/mem/urr)",
                format!(
                    "{:+.1}/{:+.1}/{:+.1}",
                    (cpu - base_cpu) * 100.0,
                    (mem - base_mem) * 100.0,
                    (urr - base_urr) * 100.0
                ),
                "small: drops thin the data, censoring removes it, neither invents failures",
            );
            compare_line(
                "weekday mean drift at 4x",
                format!("{:+.2} h", iv.weekday.mean() - base_iv.weekday.mean()),
                "downward: long intervals overlap gaps more often, so exclusion thins the tail",
            );
        }
    }
    table.print();
    let path = write_csv(
        "fault_matrix",
        "scale,records,cpu_frac,mem_frac,urr_frac,weekday_mean_h,weekend_mean_h,\
         censored_secs,corrupt_lines,dropped,restarts,crashes,gave_up",
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
