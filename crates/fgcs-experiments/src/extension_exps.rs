//! Extension experiments beyond the paper's figures: the §3.2.2 policy
//! design space (X5) and the §6 future-work testbed scenarios (X6).

use fgcs_core::model::Thresholds;
use fgcs_core::policy::{run_policy, standard_policies};
use fgcs_predict::eval::{evaluate, standard_predictors, EvalConfig};
use fgcs_sim::machine::MachineConfig;
use fgcs_sim::time::secs;
use fgcs_sim::workloads::synthetic;
use fgcs_testbed::analysis;
use fgcs_testbed::runner::{run_testbed, TestbedConfig};
use fgcs_testbed::scenarios;

use crate::report::{banner, pct, write_csv, TextTable};

/// X5: the guest-management policy design space of §3.2.2.
pub fn policies(quick: bool) {
    banner("Policies (X5) — the §3.2.2 design space, quantified");
    let (warmup, measure) = if quick { (5, 60) } else { (10, 240) };
    let thresholds = Thresholds::LINUX_TESTBED;

    let mut table = TextTable::new(&[
        "host LH",
        "policy",
        "host slowdown",
        "guest CPU",
        "terminated",
        "mgmt actions",
    ]);
    let mut csv = Vec::new();
    for &lh in &[0.1, 0.3, 0.5, 0.7, 0.9] {
        let hosts = [synthetic::host_process("h", lh)];
        for policy in standard_policies(thresholds).iter_mut() {
            let out = run_policy(
                &MachineConfig::default(),
                &hosts,
                policy.as_mut(),
                secs(2),
                warmup,
                measure,
            );
            table.row(vec![
                format!("{lh:.1}"),
                policy.name().to_string(),
                pct(out.host_reduction),
                pct(out.guest_usage),
                if out.guest_terminated {
                    "yes".into()
                } else {
                    "no".into()
                },
                out.actions.to_string(),
            ]);
            csv.push(format!(
                "{lh:.1},{},{:.4},{:.4},{},{}",
                policy.name(),
                out.host_reduction,
                out.guest_usage,
                out.guest_terminated,
                out.actions
            ));
        }
    }
    table.print();
    println!(
        "\nthe paper's elimination argument, quantified: gradual priorities \
         protect the host no better than the two-threshold policy while \
         managing more; always-lowest forgoes guest CPU at light load; \
         coarse-grained wastes most of the machine."
    );
    let path = write_csv(
        "policies",
        "lh,policy,host_reduction,guest_usage,terminated,actions",
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}

/// X7: cluster placement strategies on live machines — the iShare
/// service end-to-end, comparing how placement interacts with the
/// five-state policy.
pub fn cluster_study(quick: bool) {
    use fgcs_core::cluster::{
        Cluster, FewestFailuresPlacement, LeastLoadedPlacement, Placement, RandomPlacement,
        RoundRobinPlacement,
    };
    use fgcs_core::controller::ControllerConfig;
    use fgcs_sim::machine::Machine;
    use fgcs_sim::proc::{Demand, MemSpec, ProcClass, ProcSpec};
    use fgcs_sim::time::minutes;

    banner("Cluster (X7) — placement strategies on a live 6-machine service");
    // All six machines are *available* (below Th2) but far from equal: a
    // guest on the 55%-loaded box computes at half the speed it gets on
    // the idle one. Jobs trickle in, so placement — not raw capacity —
    // decides how fast the queue drains.
    let host_loads = [0.05, 0.10, 0.25, 0.40, 0.50, 0.55];
    let jobs: usize = if quick { 10 } else { 20 };
    let job_minutes = if quick { 3 } else { 5 };
    let arrival_gap = minutes(3);

    let placements: Vec<Box<dyn Placement>> = vec![
        Box::new(RandomPlacement::new(0xC1)),
        Box::new(RoundRobinPlacement::default()),
        Box::new(LeastLoadedPlacement),
        Box::new(FewestFailuresPlacement),
    ];

    let mut table = TextTable::new(&[
        "placement",
        "mean response (min)",
        "completed",
        "terminations",
        "dispatches",
    ]);
    let mut csv = Vec::new();
    for placement in placements {
        let name = placement.name();
        let machines: Vec<Machine> = host_loads
            .iter()
            .map(|&l| {
                let mut m = Machine::default_linux();
                m.spawn(synthetic::host_process("user", l));
                m
            })
            .collect();
        let mut cluster = Cluster::new(machines, ControllerConfig::default(), placement);
        cluster.run_ticks(secs(10));
        for i in 0..jobs {
            cluster.submit(ProcSpec::new(
                format!("job-{i}"),
                ProcClass::Guest,
                0,
                Demand::CpuBound {
                    total_work: Some(minutes(job_minutes)),
                },
                MemSpec::resident(32),
            ));
            cluster.run_ticks(arrival_gap);
        }
        cluster.run_until_drained(minutes(360));
        let s = cluster.stats();
        let mean_resp = s.mean_response_ticks / minutes(1) as f64;
        table.row(vec![
            name.to_string(),
            format!("{mean_resp:.2}"),
            s.completed.to_string(),
            s.terminated.to_string(),
            s.dispatched.to_string(),
        ]);
        csv.push(format!(
            "{name},{mean_resp:.3},{},{},{}",
            s.completed, s.terminated, s.dispatched
        ));
    }
    table.print();
    println!(
        "\nload-aware placement runs each job on the quietest machine, so its \
         mean response approaches the job's raw compute time; blind \
         strategies pay the slowdown of whatever machine they hit."
    );
    let path = write_csv(
        "cluster",
        "placement,mean_response_min,completed,terminated,dispatched",
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}

/// X8: ablation of the detector's two timing rules — the 1-minute
/// transient-spike tolerance (§4) and the 5-minute harvest delay (§5.2:
/// "the system should wait for about 5 minutes before harvesting a
/// machine recently released from heavy host workloads").
pub fn detector_rules(quick: bool) {
    banner("Detector rules (X8) — spike tolerance and harvest delay, ablated");
    let mut base = TestbedConfig::default();
    if quick {
        base.lab.machines = 8;
        base.lab.days = 21;
    }

    // "No spike tolerance" is 1 s, not 0: DetectorConfig rejects 0 as a
    // misconfiguration, and with 15 s sampling any tolerance below the
    // sample period already means a spike confirmed at the next sample
    // fails immediately — tolerance ablated at the sampling resolution.
    let variants: Vec<(&str, u64, u64)> = vec![
        ("both rules (paper)", 60, 300),
        ("no spike tolerance", 1, 300),
        ("no harvest delay", 60, 15),
        ("neither rule", 1, 15),
    ];
    let mut table = TextTable::new(&[
        "detector",
        "events/machine-day",
        "vs paper rules",
        "intervals <5min",
        "wd mean interval (h)",
    ]);
    let mut csv = Vec::new();
    let mut baseline_events = 0usize;
    for (name, spike, harvest) in variants {
        let mut cfg = base.clone();
        cfg.detector.spike_tolerance = spike;
        cfg.detector.harvest_delay = harvest;
        let trace = run_testbed(&cfg);
        let events = trace.records.len();
        if spike == 60 && harvest == 300 {
            baseline_events = events;
        }
        let rate = events as f64 / trace.machine_days() as f64;
        let iv = analysis::intervals(&trace);
        let short = iv.weekday.eval(5.0 / 60.0);
        let rel = if baseline_events > 0 {
            events as f64 / baseline_events as f64
        } else {
            1.0
        };
        table.row(vec![
            name.to_string(),
            format!("{rate:.1}"),
            format!("{rel:.2}x"),
            pct(short),
            format!("{:.2}", iv.weekday.mean()),
        ]);
        csv.push(format!(
            "{name},{spike},{harvest},{rate:.3},{short:.4},{:.4}",
            iv.weekday.mean()
        ));
    }
    table.print();
    println!(
        "\nwithout the 1-minute tolerance every short load blip kills the \
         guest; without the 5-minute harvest delay the system re-places \
         jobs onto machines that are about to fail again, fragmenting the \
         availability intervals — the paper's two rules both earn their keep."
    );
    let path = write_csv(
        "detector_rules",
        "variant,spike_tolerance,harvest_delay,events_per_machine_day,frac_under_5min,wd_mean_hours",
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}

/// X6: the §6 future-work scenarios — does the predictability finding
/// transfer to other host-workload patterns?
pub fn scenario_study(quick: bool) {
    banner("Scenarios (X6) — predictability across host-workload patterns (§6)");
    let mut table = TextTable::new(&[
        "testbed",
        "events/machine-day",
        "cpu%",
        "mem%",
        "urr%",
        "wd corr",
        "we corr",
        "history Brier (2h)",
        "base Brier (2h)",
    ]);
    let mut csv = Vec::new();
    for (name, mut lab) in scenarios::all() {
        if quick {
            lab.machines = 6;
            lab.days = 21;
        } else {
            lab.machines = 12;
            lab.days = 56;
        }
        let cfg = TestbedConfig {
            lab,
            ..TestbedConfig::default()
        };
        let trace = run_testbed(&cfg);
        let t2 = analysis::table2(&trace);
        let (cpu, mem, urr) = t2.percentage_ranges();
        let reg = analysis::regularity(&trace);
        let total: usize = t2.per_machine.iter().map(|c| c.total).sum();
        let rate = total as f64 / trace.machine_days() as f64;

        let mut preds = standard_predictors();
        let eval_cfg = EvalConfig {
            windows: vec![2 * 3600],
            ..Default::default()
        };
        let rows = evaluate(&trace, &mut preds, &eval_cfg);
        let brier = |n: &str| {
            rows.iter()
                .find(|r| r.predictor == n)
                .map(|r| r.brier)
                .unwrap_or(f64::NAN)
        };

        table.row(vec![
            name.to_string(),
            format!("{rate:.1}"),
            format!("{cpu}"),
            format!("{mem}"),
            format!("{urr}"),
            format!("{:.2}", reg.weekday_correlation),
            format!("{:.2}", reg.weekend_correlation),
            format!("{:.3}", brier("history-window")),
            format!("{:.3}", brier("base-rate")),
        ]);
        csv.push(format!(
            "{name},{rate:.3},{:.2},{:.2},{:.4},{:.4}",
            reg.weekday_correlation,
            reg.weekend_correlation,
            brier("history-window"),
            brier("base-rate")
        ));
    }
    table.print();
    println!(
        "\nthe paper's expectation (§6): different host-workload patterns, \
         similar predictability — history-window prediction should beat the \
         base rate on every testbed."
    );
    let path = write_csv(
        "scenarios",
        "testbed,events_per_machine_day,wd_corr,we_corr,history_brier,base_brier",
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}

/// X10: seed robustness — the Table 2 reproduction must not hinge on a
/// lucky seed. Re-runs the full testbed under several seeds and reports
/// the spread of the headline statistics, with a bootstrap CI on the
/// per-machine event count.
pub fn seeds(quick: bool) {
    use fgcs_stats::bootstrap::bootstrap_mean_ci;
    use fgcs_stats::rng::Rng;

    banner("Seeds (X10) — Table 2 statistics across independent seeds");
    let seeds: &[u64] = if quick {
        &[1, 2, 3]
    } else {
        &[20050801, 1, 42, 0xFEED, 20260707]
    };
    let mut table = TextTable::new(&[
        "seed",
        "total (per machine)",
        "cpu%",
        "mem%",
        "urr%",
        "reboot frac",
        "mean events/machine ±95% CI",
    ]);
    let mut csv = Vec::new();
    for &seed in seeds {
        let mut cfg = TestbedConfig::default();
        if quick {
            cfg.lab.machines = 8;
            cfg.lab.days = 28;
        }
        cfg.lab.seed = seed;
        let trace = run_testbed(&cfg);
        let t2 = analysis::table2(&trace);
        let (cpu, mem, urr) = t2.percentage_ranges();
        let counts: Vec<f64> = t2.per_machine.iter().map(|c| c.total as f64).collect();
        let mut rng = Rng::new(seed ^ 0xB00);
        let ci = bootstrap_mean_ci(&counts, 2000, 0.95, &mut rng).expect("non-empty");
        table.row(vec![
            seed.to_string(),
            t2.total.to_string(),
            cpu.to_string(),
            mem.to_string(),
            urr.to_string(),
            format!("{:.2}", t2.urr_reboot_fraction),
            format!("{:.0} [{:.0}, {:.0}]", ci.estimate, ci.lo, ci.hi),
        ]);
        csv.push(format!(
            "{seed},{},{},{},{},{:.4},{:.1},{:.1},{:.1}",
            t2.total, cpu, mem, urr, t2.urr_reboot_fraction, ci.estimate, ci.lo, ci.hi
        ));
    }
    table.print();
    println!(
        "\nevery seed lands in (or adjacent to) the paper's ranges — the \
         reproduction reflects the generator's structure, not one lucky draw."
    );
    let path = write_csv(
        "seeds",
        "seed,total_range,cpu_pct,mem_pct,urr_pct,reboot_frac,mean,ci_lo,ci_hi",
        &csv,
    )
    .expect("csv");
    println!("wrote {}", path.display());
}
