//! X15: fleet-scale streaming analysis — the §5 study at 100k machines.
//!
//! The paper instrumented 20 machines. A production FGCS federation is
//! three to five orders of magnitude larger, which is exactly where the
//! exact analysis path dies: it materializes every availability
//! interval of every machine before sorting. This experiment exercises
//! the bounded-memory alternative end to end:
//!
//! 1. **Lab oracle** — the standard 20-machine trace is folded through
//!    the streaming path ([`trace_exps::verified_streaming`] asserts
//!    bit-equality for Table 2 / Fig 7 and the CDF bound for Fig 6),
//!    then the sketch's *measured* quantile rank error at every
//!    percentile is compared against its runtime-certified bound.
//! 2. **Reproducibility** — a small fleet is run twice in-process with
//!    `FGCS_PAR_WORKERS` forced to 1 and then 4; the accumulators must
//!    agree bit-for-bit (fixed chunking + in-order merge).
//! 3. **Fleet sweep** — 100k machines × 92 days (smoke: 200 × 14)
//!    across five archetypes, streaming only, with peak RSS read from
//!    `/proc/self/status` and gated against a fixed budget. Set
//!    `FGCS_FLEET_MACHINES` to push the sweep to 1M.
//! 4. **Verdicts** — which of the paper's headline findings (CPU
//!    contention dominates; weekend intervals run longer; daily
//!    patterns repeat) survive on each archetype.
//!
//! Writes `results/fleet_archetypes.csv`, `results/fleet_cdf.csv`, and
//! `BENCH_fleet.json` (cwd-relative, flat gate keys for `ci.sh`).

use fgcs_testbed::analysis;
use fgcs_testbed::calendar::DayType;
use fgcs_testbed::fleet::{run_fleet, Archetype, FleetConfig};
use fgcs_testbed::json::ObjWriter;
use fgcs_testbed::streaming::StreamingAnalysis;

use crate::report::{banner, compare_line, pct, write_csv, TextTable};
use crate::trace_exps;

/// Peak resident set ("high-water mark") of this process, in MB. Linux
/// reads it from `/proc/self/status`; elsewhere the gate degrades to 0
/// (absent /proc there is nothing portable to measure).
fn peak_rss_mb() -> u64 {
    proc_status_kb("VmHWM:").unwrap_or(0) / 1024
}

/// Current resident set in MB (same caveats as [`peak_rss_mb`]).
fn current_rss_mb() -> u64 {
    proc_status_kb("VmRSS:").unwrap_or(0) / 1024
}

fn proc_status_kb(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix(key))?
        .trim()
        .split_whitespace()
        .next()?
        .parse()
        .ok()
}

/// The RSS ceiling for the full 100k-machine sweep. The exact path
/// would need gigabytes just for the interval vectors at this scale;
/// the streaming path fits the whole sweep, analysis included, in a
/// fraction of this.
const RSS_BUDGET_MB: u64 = 1024;

/// Measured-vs-certified sketch accuracy on the lab trace.
struct SketchAccuracy {
    /// Worst observed quantile rank error (fraction of n) over every
    /// integer percentile of both day-type sketches.
    measured: f64,
    /// Worst runtime-certified bound (fraction of n), plus one rank of
    /// slack for the discrete target-rank convention.
    bound: f64,
}

/// Queries every integer percentile from `acc`'s interval sketches and
/// measures how far each answer's true rank (from the exact sorted
/// intervals) sits from the target rank. Ties are handled by measuring
/// distance to the `[#<v, #<=v]` rank interval, since any value inside
/// a tie run is a correct order statistic. Panics if the measured
/// error ever exceeds the runtime-certified bound.
fn sketch_accuracy(acc: &StreamingAnalysis, iv: &analysis::IntervalAnalysis) -> SketchAccuracy {
    let mut out = SketchAccuracy {
        measured: 0.0,
        bound: 0.0,
    };
    for (dt, ecdf) in [
        (DayType::Weekday, &iv.weekday),
        (DayType::Weekend, &iv.weekend),
    ] {
        let sk = acc.interval_sketch(dt);
        if sk.count() == 0 {
            continue;
        }
        let n = sk.count() as f64;
        let bound = (sk.quantile_rank_error_bound() as f64 + 1.0) / n;
        out.bound = out.bound.max(bound);
        let sorted = ecdf.samples();
        let mut worst = 0.0f64;
        for i in 1..100 {
            let q = i as f64 / 100.0;
            let v = sk.quantile(q).expect("interval lengths contain no NaNs");
            let lo = sorted.partition_point(|&x| x < v) as f64;
            let hi = sorted.partition_point(|&x| x <= v) as f64;
            let target = q * n;
            let err = if target < lo {
                lo - target
            } else if target > hi {
                target - hi
            } else {
                0.0
            };
            worst = worst.max(err / n);
        }
        out.measured = out.measured.max(worst);
        println!(
            "  {dt} (k = {}): n = {}, stored {}, certified rank bound {bound:.5}, \
             worst measured {worst:.5}",
            sk.k(),
            sk.count(),
            sk.stored_len(),
        );
    }
    assert!(
        out.measured <= out.bound,
        "sketch rank error {} exceeded its certified bound {}",
        out.measured,
        out.bound
    );
    out
}

/// Phase 1: on the 20-machine trace (where the exact ECDF is cheap),
/// check the sketch twice — at the production capacity, where the lab
/// trace fits without compaction (the common fast path), and at a
/// deliberately tiny capacity that forces multiple compaction rounds,
/// so the error certificate is exercised for real.
fn lab_sketch_accuracy(quick: bool) -> (SketchAccuracy, SketchAccuracy) {
    let trace = trace_exps::standard_trace(quick);
    let acc = trace_exps::verified_streaming(&trace);
    let iv = analysis::intervals(&trace);
    let production = sketch_accuracy(&acc, &iv);
    let stressed = StreamingAnalysis::from_trace(&trace, STRESS_K);
    let stress = sketch_accuracy(&stressed, &iv);
    (production, stress)
}

/// Sketch capacity small enough that the lab trace overflows it and
/// compaction (the lossy step the certificate accounts for) runs.
const STRESS_K: usize = 32;

/// Phase 2: the determinism contract, checked in-process. Chunking is
/// a config constant and partials merge in chunk order, so the result
/// must be bit-identical no matter how many workers raced over the
/// chunks.
fn repro_check() -> bool {
    let mut cfg = FleetConfig::smoke();
    cfg.machines = 60;
    cfg.days = 7;
    cfg.chunk_size = 7; // deliberately not a divisor of the count
    let prev = std::env::var("FGCS_PAR_WORKERS").ok();
    std::env::set_var("FGCS_PAR_WORKERS", "1");
    let a = run_fleet(&cfg);
    std::env::set_var("FGCS_PAR_WORKERS", "4");
    let b = run_fleet(&cfg);
    match prev {
        Some(v) => std::env::set_var("FGCS_PAR_WORKERS", v),
        None => std::env::remove_var("FGCS_PAR_WORKERS"),
    }
    format!("{:?}", a.combined) == format!("{:?}", b.combined)
        && a.per_archetype.len() == b.per_archetype.len()
        && a.per_archetype
            .iter()
            .zip(&b.per_archetype)
            .all(|((x, s), (y, t))| x == y && format!("{s:?}") == format!("{t:?}"))
}

/// Which of the paper's §5 findings hold on one archetype.
struct Verdict {
    /// Table 2: CPU contention is the dominant cause (paper: 69–79%).
    cpu_dominant: bool,
    /// Figure 6: weekend intervals run longer than weekday ones.
    weekend_longer: bool,
    /// §5.3: hour-of-day patterns repeat across same-type days.
    regular: bool,
}

fn verdict(acc: &StreamingAnalysis) -> Verdict {
    let t2 = acc.table2_summary();
    let cpu_mid = (t2.cpu_pct.min + t2.cpu_pct.max) as f64 / 2.0;
    let reg = acc.regularity();
    Verdict {
        cpu_dominant: cpu_mid >= 50.0,
        weekend_longer: acc.mean_hours(DayType::Weekend) > acc.mean_hours(DayType::Weekday),
        regular: reg.weekday_correlation >= 0.5,
    }
}

fn yes_no(b: bool) -> &'static str {
    if b {
        "holds"
    } else {
        "breaks"
    }
}

/// X15 entry point.
pub fn fleet(quick: bool) {
    banner("X15 — fleet-scale streaming analysis under a fixed memory budget");

    println!("phase 1: sketch accuracy vs the exact oracle (lab scale)");
    let (acc1, stress1) = lab_sketch_accuracy(quick);
    compare_line(
        "worst sketch quantile rank error (lab)",
        format!("{:.5}", acc1.measured),
        &format!("<= certified bound {:.5}", acc1.bound),
    );
    compare_line(
        &format!("same, sketch squeezed to k = {STRESS_K}"),
        format!("{:.5}", stress1.measured),
        &format!("<= certified bound {:.5}", stress1.bound),
    );

    println!("\nphase 2: bit-reproducibility across FGCS_PAR_WORKERS = 1 vs 4");
    let repro = repro_check();
    assert!(repro, "fleet accumulators diverged across worker counts");
    println!("  60-machine probe fleet: accumulators bit-identical");

    println!("\nphase 3: the fleet sweep");
    let mut cfg = if quick {
        FleetConfig::smoke()
    } else {
        FleetConfig {
            machines: 100_000,
            chunk_size: 512,
            ..FleetConfig::default()
        }
    };
    // Escape hatch for the 1M-machine version of the sweep; the memory
    // story is unchanged (accumulators scale with days, not machines),
    // only wall-clock grows.
    if let Ok(m) = std::env::var("FGCS_FLEET_MACHINES") {
        cfg.machines = m.parse().expect("FGCS_FLEET_MACHINES must be a count");
    }
    let rss_before = current_rss_mb();
    println!(
        "  {} machines x {} days, sketch k = {}, chunk = {}, RSS before: {} MB",
        cfg.machines, cfg.days, cfg.sketch_k, cfg.chunk_size, rss_before
    );
    let t0 = std::time::Instant::now();
    let result = run_fleet(&cfg);
    let wall = t0.elapsed();
    let peak = peak_rss_mb();
    let t2 = result.combined.table2_summary();
    println!(
        "  swept {} machines ({} occurrences) in {:.1?}; peak RSS {} MB (budget {} MB)",
        t2.machines, t2.occurrences, wall, peak, RSS_BUDGET_MB
    );
    assert!(
        peak <= RSS_BUDGET_MB,
        "peak RSS {peak} MB blew the {RSS_BUDGET_MB} MB budget"
    );
    compare_line(
        "peak RSS for the whole sweep",
        format!("{peak} MB"),
        &format!("<= {RSS_BUDGET_MB} MB (exact path: O(machines) — gigabytes)"),
    );

    println!("\nphase 4: per-archetype verdicts on the paper's findings");
    let mut table = TextTable::new(&[
        "archetype",
        "machines",
        "occ/machine",
        "cpu% (mid)",
        "wd/we mean (h)",
        "cpu dominant",
        "weekend longer",
        "regular",
    ]);
    let mut arch_csv = Vec::new();
    let mut cdf_csv = Vec::new();
    let mut arch_objs: Vec<(&'static str, ObjWriter)> = Vec::new();
    let everyone: Vec<(&str, &StreamingAnalysis)> = result
        .per_archetype
        .iter()
        .map(|(a, s)| (a.name(), s))
        .chain(std::iter::once(("combined", &result.combined)))
        .collect();
    for (name, acc) in &everyone {
        let s = acc.table2_summary();
        let v = verdict(acc);
        let reg = acc.regularity();
        let cpu_mid = (s.cpu_pct.min + s.cpu_pct.max) as f64 / 2.0;
        let (wd_mean, we_mean) = (
            acc.mean_hours(DayType::Weekday),
            acc.mean_hours(DayType::Weekend),
        );
        table.row(vec![
            name.to_string(),
            s.machines.to_string(),
            format!("{:.1}", s.occurrences as f64 / s.machines.max(1) as f64),
            format!("{cpu_mid:.0}%"),
            format!("{wd_mean:.2}/{we_mean:.2}"),
            yes_no(v.cpu_dominant).into(),
            yes_no(v.weekend_longer).into(),
            yes_no(v.regular).into(),
        ]);
        arch_csv.push(format!(
            "{name},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{}",
            s.machines,
            s.occurrences,
            s.cpu_pct.min,
            s.cpu_pct.max,
            s.mem_pct.min,
            s.mem_pct.max,
            s.urr_pct.min,
            s.urr_pct.max,
            s.urr_reboot_fraction,
            wd_mean,
            we_mean,
            reg.weekday_correlation,
            reg.weekend_correlation,
            v.cpu_dominant as u8,
            v.weekend_longer as u8,
            v.regular as u8,
        ));
        for (dt, label) in [(DayType::Weekday, "weekday"), (DayType::Weekend, "weekend")] {
            let sk = acc.interval_sketch(dt);
            for i in 0..=48 {
                let h = i as f64 * 0.5;
                cdf_csv.push(format!(
                    "{name},{label},{h:.1},{:.4}",
                    sk.cdf(h).unwrap_or(0.0)
                ));
            }
        }
        let mut o = ObjWriter::new();
        o.u64("machines", s.machines)
            .u64("occurrences", s.occurrences)
            .f64("cpu_pct_mid", cpu_mid)
            .f64("urr_reboot_fraction", s.urr_reboot_fraction)
            .u64("cpu_dominant", v.cpu_dominant as u64)
            .u64("weekend_longer", v.weekend_longer as u64)
            .u64("regular", v.regular as u64);
        arch_objs.push((name_static(name), o));
    }
    table.print();
    println!(
        "  reading: the student lab reproduces the paper; servers and build \
         farms erase the weekday/weekend divide (no console users), and \
         power-off desktops / lid-close laptops flip the dominant cause \
         from CPU contention to revocation."
    );
    compare_line(
        "combined URR reboot fraction",
        pct(t2.urr_reboot_fraction),
        "~90% on the lab testbed; lower fleet-wide (lid closes, power-off)",
    );

    let p = write_csv(
        "fleet_archetypes",
        "archetype,machines,occurrences,cpu_pct_min,cpu_pct_max,mem_pct_min,mem_pct_max,\
         urr_pct_min,urr_pct_max,urr_reboot_fraction,weekday_mean_h,weekend_mean_h,\
         weekday_corr,weekend_corr,cpu_dominant,weekend_longer,regular",
        &arch_csv,
    )
    .expect("csv");
    println!("wrote {}", p.display());
    let p = write_csv("fleet_cdf", "archetype,day_type,hours,cdf", &cdf_csv).expect("csv");
    println!("wrote {}", p.display());

    let mut bench = ObjWriter::new();
    bench
        .u64("schema_version", 1)
        .str("experiment", "fleet")
        .u64("fleet_machines", t2.machines)
        .u64("fleet_days", cfg.days as u64)
        .u64("fleet_archetypes", result.per_archetype.len() as u64)
        .u64("fleet_occurrences", t2.occurrences)
        .u64("peak_rss_mb", peak)
        .u64("rss_budget_mb", RSS_BUDGET_MB)
        .u64("sketch_k", cfg.sketch_k as u64)
        .f64("lab_rank_err", acc1.measured)
        .f64("lab_rank_bound", acc1.bound)
        .u64("stress_k", STRESS_K as u64)
        .f64("stress_rank_err", stress1.measured)
        .f64("stress_rank_bound", stress1.bound)
        .u64(
            "sketch_within_bound",
            (acc1.measured <= acc1.bound && stress1.measured <= stress1.bound) as u64,
        )
        .u64("repro_identical", repro as u64)
        .f64("fleet_wall_secs", wall.as_secs_f64());
    for (name, o) in arch_objs {
        bench.obj(name, o);
    }
    std::fs::write("BENCH_fleet.json", bench.finish() + "\n").expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");
}

/// Maps an archetype (or "combined") name back to a `'static` key for
/// the JSON writer.
fn name_static(name: &str) -> &'static str {
    for a in Archetype::ALL {
        if a.name() == name {
            return a.name();
        }
    }
    "combined"
}
