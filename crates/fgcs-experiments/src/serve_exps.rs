//! X12: the networked availability service under load.
//!
//! Three phases over real localhost TCP:
//!
//! 1. **Clean** — replay the lab through the load generator at full
//!    speed with interleaved availability queries; measure ingest
//!    throughput and query latency percentiles, and assert the streamed
//!    pipeline decodes everything and answers queries.
//! 2. **Overload** — pin the server's ingest capacity (1 worker, tiny
//!    queue, artificial per-batch cost) well below the offered load and
//!    verify the backpressure accounting reconciles exactly:
//!    `sent == ingested + shed + decode-rejected`.
//! 3. **Fan-in scaling** (Linux) — drive 64 → 4096 concurrent monitor
//!    connections at a fixed aggregate sample rate through each backend
//!    (thread-per-connection vs epoll readiness loop) and record the
//!    per-backend scaling curve: connections sustained, query p99, and
//!    the exact accounting identity at every level.
//! 4. **Multi-core scaling** (Linux) — the epoll backend at 1/2/4/8
//!    event loops over a 1024–8192-connection ladder, fixed offered
//!    load, with a per-batch ingest cost pinning single-loop capacity.
//!    Measures ingested samples/s over the streaming window (connect
//!    time excluded), query latency, and the instrumented
//!    lock-contention table; the 4-loop/1-loop pair at the gate level
//!    is the before/after evidence for the multi-loop socket layer.
//!
//! Writes `results/serve.csv`, `results/serve_scaling.csv`,
//! `results/serve_multicore.csv`, and `BENCH_serve.json`
//! (cwd-relative).

use fgcs_service::{run_loadgen, Backend, LoadGenConfig, LoadGenReport, Server, ServiceConfig};
use fgcs_stats::quantile::quantiles;
use fgcs_testbed::json::ObjWriter;
use fgcs_testbed::runner::TestbedConfig;
use fgcs_wire::StatsPayload;

use crate::report::{banner, write_csv};

/// p50/p99 of a latency sample with a single sort (the old
/// `quantile(..)` pair sorted the vector twice).
fn p50_p99_us(lat: &[f64]) -> (f64, f64) {
    match quantiles(lat, &[0.5, 0.99]) {
        Some(q) => (q[0], q[1]),
        None => (0.0, 0.0),
    }
}

struct PhaseOutcome {
    report: LoadGenReport,
    stats: StatsPayload,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Waits until every sent batch is accounted for (ingested, shed, or
/// decode-rejected) and the queue is empty, then snapshots stats.
fn drain(server: &Server, batches_sent: u64) -> StatsPayload {
    for _ in 0..600 {
        let stats = server.stats();
        if stats.ingested_batches + stats.shed_batches + stats.decode_errors >= batches_sent
            && stats.queue_depth == 0
        {
            return stats;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("X12: server failed to drain; stats = {:?}", server.stats());
}

fn run_phase(svc: ServiceConfig, lg: &LoadGenConfig) -> PhaseOutcome {
    let server = Server::start(svc).expect("X12: server starts");
    let addr = server.local_addr().to_string();
    let report = run_loadgen(&addr, lg).expect("X12: load generator runs");
    let stats = drain(&server, report.batches_sent);
    server.shutdown();

    let throughput = if report.elapsed_secs > 0.0 {
        report.samples_sent as f64 / report.elapsed_secs
    } else {
        0.0
    };
    let lat: Vec<f64> = report
        .query_latencies_us
        .iter()
        .map(|&us| us as f64)
        .collect();
    let (p50_us, p99_us) = p50_p99_us(&lat);
    PhaseOutcome {
        report,
        stats,
        throughput,
        p50_us,
        p99_us,
    }
}

fn reconcile(phase: &str, out: &PhaseOutcome) {
    let (r, s) = (&out.report, &out.stats);
    assert_eq!(
        s.ingested_batches + s.shed_batches + s.decode_errors,
        r.batches_sent,
        "X12 {phase}: server identity sent == ingested + shed + decode-rejected"
    );
    assert_eq!(
        r.acks + r.busys + r.error_replies,
        r.batches_sent,
        "X12 {phase}: client identity acks + busys + errors == sent"
    );
    assert_eq!(
        s.busy_replies, s.shed_batches,
        "X12 {phase}: one Busy per shed batch"
    );
    assert_eq!(
        r.busys, s.shed_batches,
        "X12 {phase}: client saw every Busy"
    );
}

/// One backend at one fan-in level: run, drain, reconcile, summarize.
#[cfg(target_os = "linux")]
struct ScalePoint {
    backend: Backend,
    conns: usize,
    report: fgcs_service::FanInReport,
    stats: StatsPayload,
    p50_us: f64,
    p99_us: f64,
}

#[cfg(target_os = "linux")]
fn run_scale_point(backend: Backend, conns: usize, threads_cap: usize) -> ScalePoint {
    use fgcs_service::FanInConfig;

    let mut svc = ServiceConfig {
        backend,
        ..Default::default()
    };
    // The threaded backend's cap is its thread budget; epoll keeps its
    // (much higher) default. The cap IS the phenomenon under test.
    if backend == Backend::Threads {
        svc.max_connections = threads_cap;
    }
    let server = Server::start(svc).expect("X12 scaling: server starts");
    let addr = server.local_addr().to_string();

    let mut fic = FanInConfig::new(conns);
    fic.batches_per_conn = 4;
    fic.batch_size = 32;
    fic.aggregate_samples_per_sec = 50_000;
    fic.query_every_batches = 2;
    let report = fgcs_service::run_fanin(&addr, &fic).expect("X12 scaling: fan-in runs");

    let stats = drain(&server, report.batches_sent);
    let ctx = format!("{} @ {conns}", backend.name());
    assert_eq!(
        report.conns_failed, 0,
        "X12 scaling {ctx}: no mid-stream deaths"
    );
    assert_eq!(
        report.conns_sustained + report.conns_rejected,
        conns,
        "X12 scaling {ctx}: every connection either sustained or was refused"
    );
    assert_eq!(
        stats.ingested_batches + stats.shed_batches + stats.decode_errors,
        report.batches_sent,
        "X12 scaling {ctx}: server identity sent == ingested + shed + decode-rejected"
    );
    assert_eq!(
        report.acks + report.busys + report.error_replies,
        report.batches_sent,
        "X12 scaling {ctx}: client identity acks + busys + errors == sent"
    );
    server.shutdown();

    let lat: Vec<f64> = report
        .query_latencies_us
        .iter()
        .map(|&us| us as f64)
        .collect();
    let (p50_us, p99_us) = p50_p99_us(&lat);
    ScalePoint {
        backend,
        conns,
        report,
        stats,
        p50_us,
        p99_us,
    }
}

/// Phase 3: the connection-scaling curve, both backends over the same
/// ladder. Returns the points for the JSON/CSV writers.
#[cfg(target_os = "linux")]
fn run_scaling(quick: bool) -> (Vec<ScalePoint>, usize) {
    // In quick mode the ladder and the threaded cap shrink together so
    // CI still crosses the cap (256 conns vs a 64-thread budget) in
    // seconds instead of minutes.
    let (levels, threads_cap): (&[usize], usize) = if quick {
        (&[64, 256], 64)
    } else {
        (&[64, 256, 1024, 4096], 1024)
    };
    let mut points = Vec::new();
    for &conns in levels {
        for backend in [Backend::Threads, Backend::Epoll] {
            let p = run_scale_point(backend, conns, threads_cap);
            println!(
                "scaling:  {:>7} @ {:>4} conns: sustained {:>4}, refused {:>4}, \
                 query p50 {:>6.0} us  p99 {:>6.0} us  ({:.2} s)",
                p.backend.name(),
                conns,
                p.report.conns_sustained,
                p.report.conns_rejected,
                p.p50_us,
                p.p99_us,
                p.report.elapsed_secs
            );
            points.push(p);
        }
    }

    // The tentpole claim, asserted at the top of the ladder: epoll
    // sustains >= 4x the connections the threaded backend does. The
    // latency half compares *equal-load* points — the aggregate sample
    // rate is fixed across the ladder, so epoll at the top level and
    // threads at its own ceiling (the largest level it fully sustains,
    // = its thread budget) serve the same offered load; epoll just
    // spreads it over 4x the sockets. The threaded point at the top
    // level is NOT comparable: it refused 3/4 of the fleet and serves
    // a quarter of the load.
    let top = *levels.last().unwrap();
    let threads_top = points
        .iter()
        .find(|p| p.backend == Backend::Threads && p.conns == top)
        .unwrap();
    let epoll_top = points
        .iter()
        .find(|p| p.backend == Backend::Epoll && p.conns == top)
        .unwrap();
    let threads_best = points
        .iter()
        .find(|p| p.backend == Backend::Threads && p.conns == threads_cap.min(top))
        .unwrap();
    assert!(
        epoll_top.report.conns_sustained >= 4 * threads_top.report.conns_sustained,
        "X12 scaling: epoll must sustain >= 4x threaded at {top} conns \
         ({} vs {})",
        epoll_top.report.conns_sustained,
        threads_top.report.conns_sustained
    );
    // The latency half of the claim needs the real ladder: at quick
    // scale the threaded backend runs a few dozen threads and never
    // pays the context-switch cost the thread-per-connection model is
    // being retired for, so its p99 is not representative there.
    //
    // Good runs put BOTH backends' p99 in the tens of microseconds,
    // where run-to-run scheduler noise on a shared box swamps the
    // difference (the threaded ceiling has been observed anywhere from
    // 32 us to 94 ms across runs). "Equal-or-better" therefore allows
    // a sub-millisecond noise floor: the gate trips only when epoll's
    // tail is *materially* worse than the threaded ceiling.
    if !quick {
        const NOISE_FLOOR_US: f64 = 500.0;
        assert!(
            epoll_top.p99_us <= threads_best.p99_us.max(NOISE_FLOOR_US),
            "X12 scaling: epoll at {top} conns must answer queries at \
             equal-or-better p99 than threads at its {}-conn ceiling under the \
             same offered load ({:.0} us vs {:.0} us)",
            threads_best.conns,
            epoll_top.p99_us,
            threads_best.p99_us
        );
    }
    (points, top)
}

/// One cell of the multi-core matrix: the epoll backend at `loops`
/// event loops under `conns` connections of fixed offered load, with a
/// per-batch ingest cost so single-loop capacity is the bottleneck.
#[cfg(target_os = "linux")]
struct CorePoint {
    loops: usize,
    conns: usize,
    report: fgcs_service::FanInReport,
    stats: StatsPayload,
    contention: Vec<fgcs_service::LockContention>,
    /// Streaming window: elapsed minus connection setup.
    window_secs: f64,
    /// Ingested samples per second of streaming window.
    samples_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

/// The artificial per-batch ingest cost for the multi-core matrix, µs.
/// It stands in for the real per-batch work a production deployment
/// does (the detector step is sub-µs on synthetic waves), and it is
/// what makes the matrix honest on a small CI box: the cost is paid
/// inside each loop's thread, so N loops genuinely overlap N batches
/// regardless of how many physical cores back them.
#[cfg(target_os = "linux")]
const CORE_INGEST_DELAY_US: u64 = 150;

/// Offered aggregate load for every cell, samples/s — far above
/// single-loop ingest capacity (batch_size / ingest_delay ≈ 213k/s),
/// so throughput measures the server's ceiling, not the pacing.
#[cfg(target_os = "linux")]
const CORE_OFFERED_SAMPLES_PER_SEC: u64 = 800_000;

#[cfg(target_os = "linux")]
fn run_core_point(loops: usize, conns: usize, total_batches: u64) -> CorePoint {
    use fgcs_service::FanInConfig;

    let svc = ServiceConfig {
        backend: Backend::Epoll,
        event_loops: loops,
        state_shards: 16,
        // Also the per-pair forwarding-ring capacity: deep enough that
        // a briefly-busy home loop queues foreign batches instead of
        // shedding them.
        queue_capacity: 1024,
        ingest_delay_us: CORE_INGEST_DELAY_US,
        ..Default::default()
    };
    let server = Server::start(svc).expect("X12 multicore: server starts");
    let addr = server.local_addr().to_string();

    let mut fic = FanInConfig::new(conns);
    fic.batches_per_conn = (total_batches / conns as u64).clamp(4, 64);
    fic.batch_size = 32;
    fic.aggregate_samples_per_sec = CORE_OFFERED_SAMPLES_PER_SEC;
    fic.query_every_batches = 4;
    fic.deadline_secs = 300;
    let report = fgcs_service::run_fanin(&addr, &fic).expect("X12 multicore: fan-in runs");

    let stats = drain(&server, report.batches_sent);
    let contention = server.lock_contention();
    let ctx = format!("{loops} loops @ {conns}");
    assert_eq!(
        report.conns_failed, 0,
        "X12 multicore {ctx}: no mid-stream deaths"
    );
    assert_eq!(
        report.conns_sustained, conns,
        "X12 multicore {ctx}: every connection sustained"
    );
    assert_eq!(
        stats.ingested_batches + stats.shed_batches + stats.decode_errors,
        report.batches_sent,
        "X12 multicore {ctx}: server identity sent == ingested + shed + decode-rejected"
    );
    assert_eq!(
        report.acks + report.busys + report.error_replies,
        report.batches_sent,
        "X12 multicore {ctx}: client identity acks + busys + errors == sent"
    );
    server.shutdown();

    let window_secs = (report.elapsed_secs - report.connect_secs).max(1e-9);
    let samples_per_sec = stats.ingested_samples as f64 / window_secs;
    let lat: Vec<f64> = report
        .query_latencies_us
        .iter()
        .map(|&us| us as f64)
        .collect();
    let (p50_us, p99_us) = p50_p99_us(&lat);
    CorePoint {
        loops,
        conns,
        report,
        stats,
        contention,
        window_secs,
        samples_per_sec,
        p50_us,
        p99_us,
    }
}

/// Phase 4: the loops × connections matrix. Returns the points plus
/// the gate level (the conns rung the before/after claim is made at).
#[cfg(target_os = "linux")]
fn run_multicore(quick: bool) -> (Vec<CorePoint>, usize) {
    // Work per cell is held constant (total batches, split across the
    // fleet) so cells differ only in loop count and fan-in width.
    let (loop_counts, levels, total_batches): (&[usize], &[usize], u64) = if quick {
        (&[1, 4], &[256], 4_096)
    } else {
        (&[1, 2, 4, 8], &[1024, 4096, 8192], 49_152)
    };
    let mut points = Vec::new();
    for &conns in levels {
        for &loops in loop_counts {
            let p = run_core_point(loops, conns, total_batches);
            println!(
                "multicore: {} loops @ {:>4} conns: {:>8.0} samples/s over {:>5.2} s window, \
                 query p50 {:>6.0} us  p99 {:>7.0} us, {} shed",
                p.loops,
                p.conns,
                p.samples_per_sec,
                p.window_secs,
                p.p50_us,
                p.p99_us,
                p.stats.shed_batches
            );
            points.push(p);
        }
    }

    // The gate rung: 4096 conns on the full ladder (256 in quick runs,
    // where the numbers are logged but not asserted — two loops on a
    // saturated CI box need the longer windows to separate cleanly).
    let gate_conns = if quick { 256 } else { 4096 };
    if !quick {
        let l1 = points
            .iter()
            .find(|p| p.loops == 1 && p.conns == gate_conns)
            .unwrap();
        let l4 = points
            .iter()
            .find(|p| p.loops == 4 && p.conns == gate_conns)
            .unwrap();
        let speedup = l4.samples_per_sec / l1.samples_per_sec.max(1e-9);
        assert!(
            speedup >= 2.0,
            "X12 multicore: 4 loops must ingest >= 2x one loop at {gate_conns} conns \
             under the same offered load ({:.0} vs {:.0} samples/s = {speedup:.2}x)",
            l4.samples_per_sec,
            l1.samples_per_sec
        );
        // The latency half: spreading ingest across loops must not buy
        // throughput by parking queries. A saturated single loop queues
        // queries behind batch work, so l4's tail is normally *better*;
        // the noise floor keeps sub-millisecond scheduler jitter from
        // tripping the gate when both tails are tiny.
        const NOISE_FLOOR_US: f64 = 500.0;
        assert!(
            l4.p99_us <= (1.5 * l1.p99_us).max(NOISE_FLOOR_US),
            "X12 multicore: 4-loop query p99 must stay within 1.5x of single-loop \
             ({:.0} us vs {:.0} us)",
            l4.p99_us,
            l1.p99_us
        );
    }
    (points, gate_conns)
}

/// X12: throughput/latency of the availability service plus overload
/// accounting.
pub fn serve(quick: bool) {
    banner("X12 — fgcs-service: streamed ingest throughput and overload backpressure");
    let mut cfg = TestbedConfig::default();
    if quick {
        cfg.lab.machines = 4;
        cfg.lab.days = 2;
    } else {
        cfg.lab.machines = 12;
        cfg.lab.days = 7;
    }

    // Phase 1: clean, full-speed, queries interleaved.
    let mut svc = ServiceConfig::for_testbed(&cfg);
    svc.queue_capacity = 4096;
    let mut lg = LoadGenConfig::new(cfg.lab.clone());
    lg.batch_size = 128;
    lg.query_every_batches = 8;
    lg.query_horizon = 1_800;
    let clean = run_phase(svc, &lg);
    reconcile("clean", &clean);
    assert_eq!(
        clean.stats.decode_errors, 0,
        "X12 clean: a clean stream must decode fully"
    );
    assert!(
        clean.report.queries_sent > 0 && clean.report.queries_answered > 0,
        "X12 clean: availability queries must be issued and answered"
    );
    assert_eq!(
        clean.stats.ingested_samples + clean.stats.shed_samples,
        clean.report.samples_sent,
        "X12 clean: every sample accounted"
    );
    println!(
        "clean:    {} machines, {} samples in {:.2} s  ->  {:.0} samples/s ingest",
        clean.report.machines,
        clean.report.samples_sent,
        clean.report.elapsed_secs,
        clean.throughput
    );
    println!(
        "          {} queries answered, latency p50 {:.0} us  p99 {:.0} us",
        clean.report.queries_answered, clean.p50_us, clean.p99_us
    );

    // Phase 2: overload — ingest capacity pinned far below offered load.
    let mut svc = ServiceConfig::for_testbed(&cfg);
    svc.workers = 1;
    svc.queue_capacity = 4;
    svc.ingest_delay_us = 2_000;
    let mut lg = LoadGenConfig::new(cfg.lab.clone());
    lg.batch_size = 16;
    // Ingest capacity is 1/ingest_delay = 500 batches/s = 8k samples/s;
    // pace the fleet to ~4x that so overload is sustained, not a burst.
    lg.samples_per_sec = 32_000 / cfg.lab.machines as u64;
    lg.max_samples_per_machine = Some(if quick { 2_000 } else { 4_000 });
    lg.query_every_batches = 32;
    let over = run_phase(svc, &lg);
    reconcile("overload", &over);
    assert!(
        over.stats.shed_batches > 0,
        "X12 overload: the queue must actually overflow"
    );
    assert!(
        over.report.queries_answered > 0,
        "X12 overload: the server must stay query-responsive under overload"
    );
    let shed_frac = over.stats.shed_batches as f64 / over.report.batches_sent as f64;
    println!(
        "overload: {} batches offered, {} ingested, {} shed ({:.1}% shed), 0 lost silently",
        over.report.batches_sent,
        over.stats.ingested_batches,
        over.stats.shed_batches,
        100.0 * shed_frac
    );
    println!(
        "          queries under overload: {} answered, latency p50 {:.0} us  p99 {:.0} us",
        over.report.queries_answered, over.p50_us, over.p99_us
    );

    // Phase 3: the connection-scaling ladder over both backends.
    #[cfg(target_os = "linux")]
    let (scale_points, scale_top) = run_scaling(quick);

    // Phase 4: the multi-core loops × connections matrix.
    #[cfg(target_os = "linux")]
    let (core_points, core_gate_conns) = run_multicore(quick);

    let row = |phase: &str, o: &PhaseOutcome| {
        format!(
            "{phase},{},{},{},{:.3},{:.0},{:.0},{:.0},{},{},{}",
            o.report.machines,
            o.report.batches_sent,
            o.report.samples_sent,
            o.report.elapsed_secs,
            o.throughput,
            o.p50_us,
            o.p99_us,
            o.stats.shed_batches,
            o.stats.decode_errors,
            o.report.queries_answered
        )
    };
    let path = write_csv(
        "serve",
        "phase,machines,batches,samples,elapsed_s,samples_per_s,query_p50_us,query_p99_us,\
         shed_batches,decode_errors,queries_answered",
        &[row("clean", &clean), row("overload", &over)],
    )
    .expect("write results/serve.csv");
    println!("wrote {}", path.display());

    #[cfg(target_os = "linux")]
    {
        let rows: Vec<String> = scale_points
            .iter()
            .map(|p| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{:.0},{:.0},{:.3}",
                    p.backend.name(),
                    p.conns,
                    p.report.conns_connected,
                    p.report.conns_sustained,
                    p.report.conns_rejected,
                    p.report.batches_sent,
                    p.report.acks,
                    p.report.busys,
                    p.stats.ingested_batches,
                    p.stats.shed_batches,
                    p.p50_us,
                    p.p99_us,
                    p.report.elapsed_secs
                )
            })
            .collect();
        let path = write_csv(
            "serve_scaling",
            "backend,conns,connected,sustained,refused,batches,acks,busys,ingested,\
             shed,query_p50_us,query_p99_us,elapsed_s",
            &rows,
        )
        .expect("write results/serve_scaling.csv");
        println!("wrote {}", path.display());

        let rows: Vec<String> = core_points
            .iter()
            .map(|p| {
                format!(
                    "{},{},{},{},{},{},{},{},{:.3},{:.3},{:.0},{:.0},{:.0}",
                    p.loops,
                    p.conns,
                    p.report.conns_sustained,
                    p.report.batches_sent,
                    p.report.acks,
                    p.report.busys,
                    p.stats.ingested_samples,
                    p.stats.shed_batches,
                    p.report.connect_secs,
                    p.window_secs,
                    p.samples_per_sec,
                    p.p50_us,
                    p.p99_us
                )
            })
            .collect();
        let path = write_csv(
            "serve_multicore",
            "loops,conns,sustained,batches,acks,busys,ingested_samples,shed,\
             connect_s,window_s,samples_per_s,query_p50_us,query_p99_us",
            &rows,
        )
        .expect("write results/serve_multicore.csv");
        println!("wrote {}", path.display());
    }

    let phase_obj = |o: &PhaseOutcome| {
        let mut w = ObjWriter::new();
        w.u64("machines", o.report.machines as u64)
            .u64("batches_sent", o.report.batches_sent)
            .u64("samples_sent", o.report.samples_sent)
            .f64("elapsed_secs", o.report.elapsed_secs)
            .f64("samples_per_sec", o.throughput)
            .f64("query_p50_us", o.p50_us)
            .f64("query_p99_us", o.p99_us)
            .u64("queries_answered", o.report.queries_answered)
            .u64("ingested_batches", o.stats.ingested_batches)
            .u64("shed_batches", o.stats.shed_batches)
            .u64("decode_errors", o.stats.decode_errors);
        w
    };
    let mut bench = ObjWriter::new();
    bench
        .str("benchmark", "serve_throughput")
        .str(
            "description",
            "X12: fgcs-service over localhost TCP. clean = full-speed trace replay with \
             interleaved availability queries; overload = ingest capacity pinned below \
             offered load (1 worker, queue capacity 4, 2 ms/batch), exercising \
             shed-oldest backpressure with exact accounting.",
        )
        .str(
            "command",
            "cargo run --release -p fgcs-experiments --bin fgcs-exp -- serve",
        )
        .obj("clean", phase_obj(&clean))
        .obj("overload", phase_obj(&over));

    #[cfg(target_os = "linux")]
    {
        let point_obj = |p: &ScalePoint| {
            let mut w = ObjWriter::new();
            w.u64("conns_connected", p.report.conns_connected as u64)
                .u64("conns_sustained", p.report.conns_sustained as u64)
                .u64("conns_refused", p.report.conns_rejected as u64)
                .u64("batches_sent", p.report.batches_sent)
                .u64("acks", p.report.acks)
                .u64("busys", p.report.busys)
                .u64("ingested_batches", p.stats.ingested_batches)
                .u64("shed_batches", p.stats.shed_batches)
                .u64("decode_errors", p.stats.decode_errors)
                .f64("query_p50_us", p.p50_us)
                .f64("query_p99_us", p.p99_us)
                .f64("elapsed_secs", p.report.elapsed_secs);
            w
        };
        // One object per ladder level ("c64", "c256", ...), each holding
        // both backends' point (the JSON writer is object-only).
        let mut levels = ObjWriter::new();
        for pair in scale_points.chunks_exact(2) {
            let mut level = ObjWriter::new();
            for p in pair {
                level.obj(p.backend.name(), point_obj(p));
            }
            levels.obj(&format!("c{}", pair[0].conns), level);
        }
        let threads_top = scale_points
            .iter()
            .find(|p| p.backend == Backend::Threads && p.conns == scale_top)
            .unwrap();
        let epoll_top = scale_points
            .iter()
            .find(|p| p.backend == Backend::Epoll && p.conns == scale_top)
            .unwrap();
        // The threaded backend's best operating point: the largest
        // level it sustains in full (its thread budget). Under the
        // ladder's fixed aggregate rate this serves the same offered
        // load as the epoll top point, so their p99s compare directly.
        let threads_best = scale_points
            .iter()
            .filter(|p| p.backend == Backend::Threads && p.report.conns_sustained == p.conns)
            .max_by_key(|p| p.conns)
            .unwrap();
        let mut top = ObjWriter::new();
        top.u64("conns", scale_top as u64)
            .u64(
                "threads_sustained",
                threads_top.report.conns_sustained as u64,
            )
            .u64("epoll_sustained", epoll_top.report.conns_sustained as u64)
            .f64(
                "sustain_ratio",
                epoll_top.report.conns_sustained as f64
                    / threads_top.report.conns_sustained.max(1) as f64,
            )
            .u64("threads_ceiling_conns", threads_best.conns as u64)
            .f64("threads_ceiling_query_p99_us", threads_best.p99_us)
            .f64("threads_query_p99_us", threads_top.p99_us)
            .f64("epoll_query_p99_us", epoll_top.p99_us);
        let mut scaling = ObjWriter::new();
        scaling
            .str(
                "description",
                "fan-in ladder: N concurrent monitor connections at a fixed 50k samples/s \
                 aggregate rate, thread-per-connection (cap = thread budget) vs epoll \
                 readiness loop, single driver thread",
            )
            .u64("aggregate_samples_per_sec", 50_000)
            .u64("batches_per_conn", 4)
            .u64("batch_size", 32)
            .obj("levels", levels)
            .obj("top", top);
        bench.obj("scaling", scaling);

        // Phase 4: the multi-core matrix, keyed level -> loop count.
        let core_obj = |p: &CorePoint| {
            let mut w = ObjWriter::new();
            w.u64("conns_sustained", p.report.conns_sustained as u64)
                .u64("batches_sent", p.report.batches_sent)
                .u64("ingested_samples", p.stats.ingested_samples)
                .u64("shed_batches", p.stats.shed_batches)
                .f64("connect_secs", p.report.connect_secs)
                .f64("window_secs", p.window_secs)
                .f64("samples_per_sec", p.samples_per_sec)
                .f64("query_p50_us", p.p50_us)
                .f64("query_p99_us", p.p99_us);
            w
        };
        let contention_obj = |p: &CorePoint| {
            let mut w = ObjWriter::new();
            for c in &p.contention {
                let mut lock = ObjWriter::new();
                lock.u64("acquisitions", c.acquisitions)
                    .u64("contended", c.contended)
                    .u64("wait_us", c.wait_us);
                w.obj(c.lock, lock);
            }
            w
        };
        let mut core_levels = ObjWriter::new();
        let mut conns_seen: Vec<usize> = Vec::new();
        for p in &core_points {
            if !conns_seen.contains(&p.conns) {
                conns_seen.push(p.conns);
            }
        }
        for &conns in &conns_seen {
            let mut level = ObjWriter::new();
            for p in core_points.iter().filter(|p| p.conns == conns) {
                level.obj(&format!("l{}", p.loops), core_obj(p));
            }
            core_levels.obj(&format!("c{conns}"), level);
        }
        let core_l1 = core_points
            .iter()
            .find(|p| p.loops == 1 && p.conns == core_gate_conns)
            .unwrap();
        let core_l4 = core_points
            .iter()
            .find(|p| p.loops == 4 && p.conns == core_gate_conns)
            .unwrap();
        // The before/after evidence in one flat object, simple enough
        // for the CI gate to parse out of the committed artifact with
        // sed: 1-loop vs 4-loop at the gate rung.
        let mut gate = ObjWriter::new();
        gate.u64("conns", core_gate_conns as u64)
            .f64("l1_samples_per_sec", core_l1.samples_per_sec)
            .f64("l4_samples_per_sec", core_l4.samples_per_sec)
            .f64(
                "speedup",
                core_l4.samples_per_sec / core_l1.samples_per_sec.max(1e-9),
            )
            .f64("l1_query_p99_us", core_l1.p99_us)
            .f64("l4_query_p99_us", core_l4.p99_us)
            .f64("p99_ratio", core_l4.p99_us / core_l1.p99_us.max(1e-9));
        let mut contention = ObjWriter::new();
        contention
            .str(
                "description",
                "instrumented lock acquisitions at the gate rung. before = 1 loop: one \
                 thread serializes every batch, so zero contention but a hard \
                 throughput ceiling. after = 4 loops: 4 threads ingest concurrently, \
                 and because each loop owns its shard subset (foreign batches ride \
                 SPSC rings, counters are per-slot) contended acquisitions stay at \
                 ~zero rather than scaling with the thread count",
            )
            .obj("before_1_loop", contention_obj(core_l1))
            .obj("after_4_loops", contention_obj(core_l4));
        let mut multicore = ObjWriter::new();
        multicore
            .str(
                "description",
                "loops x connections matrix on the epoll backend: N SO_REUSEPORT event \
                 loops pinned to disjoint state-shard subsets, fixed offered load, \
                 per-batch ingest cost pinning single-loop capacity; samples_per_sec \
                 is ingested samples over the streaming window (connect time excluded)",
            )
            .u64("ingest_delay_us", CORE_INGEST_DELAY_US)
            .u64("offered_samples_per_sec", CORE_OFFERED_SAMPLES_PER_SEC)
            .u64("batch_size", 32)
            .u64("state_shards", 16)
            .obj("levels", core_levels)
            .obj("gate", gate)
            .obj("contention", contention);
        bench.obj("multicore", multicore);
    }

    std::fs::write("BENCH_serve.json", bench.finish() + "\n").expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
