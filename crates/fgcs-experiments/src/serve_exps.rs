//! X12: the networked availability service under load.
//!
//! Two phases over real localhost TCP:
//!
//! 1. **Clean** — replay the lab through the load generator at full
//!    speed with interleaved availability queries; measure ingest
//!    throughput and query latency percentiles, and assert the streamed
//!    pipeline decodes everything and answers queries.
//! 2. **Overload** — pin the server's ingest capacity (1 worker, tiny
//!    queue, artificial per-batch cost) well below the offered load and
//!    verify the backpressure accounting reconciles exactly:
//!    `sent == ingested + shed + decode-rejected`.
//!
//! Writes `results/serve.csv` and `BENCH_serve.json` (cwd-relative).

use fgcs_service::{run_loadgen, LoadGenConfig, LoadGenReport, Server, ServiceConfig};
use fgcs_stats::quantile::quantile;
use fgcs_testbed::json::ObjWriter;
use fgcs_testbed::runner::TestbedConfig;
use fgcs_wire::StatsPayload;

use crate::report::{banner, write_csv};

struct PhaseOutcome {
    report: LoadGenReport,
    stats: StatsPayload,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Waits until every sent batch is accounted for (ingested, shed, or
/// decode-rejected) and the queue is empty, then snapshots stats.
fn drain(server: &Server, batches_sent: u64) -> StatsPayload {
    for _ in 0..600 {
        let stats = server.stats();
        if stats.ingested_batches + stats.shed_batches + stats.decode_errors >= batches_sent
            && stats.queue_depth == 0
        {
            return stats;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("X12: server failed to drain; stats = {:?}", server.stats());
}

fn run_phase(svc: ServiceConfig, lg: &LoadGenConfig) -> PhaseOutcome {
    let server = Server::start(svc).expect("X12: server starts");
    let addr = server.local_addr().to_string();
    let report = run_loadgen(&addr, lg).expect("X12: load generator runs");
    let stats = drain(&server, report.batches_sent);
    server.shutdown();

    let throughput = if report.elapsed_secs > 0.0 {
        report.samples_sent as f64 / report.elapsed_secs
    } else {
        0.0
    };
    let lat: Vec<f64> = report
        .query_latencies_us
        .iter()
        .map(|&us| us as f64)
        .collect();
    let p50_us = quantile(&lat, 0.5).unwrap_or(0.0);
    let p99_us = quantile(&lat, 0.99).unwrap_or(0.0);
    PhaseOutcome {
        report,
        stats,
        throughput,
        p50_us,
        p99_us,
    }
}

fn reconcile(phase: &str, out: &PhaseOutcome) {
    let (r, s) = (&out.report, &out.stats);
    assert_eq!(
        s.ingested_batches + s.shed_batches + s.decode_errors,
        r.batches_sent,
        "X12 {phase}: server identity sent == ingested + shed + decode-rejected"
    );
    assert_eq!(
        r.acks + r.busys + r.error_replies,
        r.batches_sent,
        "X12 {phase}: client identity acks + busys + errors == sent"
    );
    assert_eq!(
        s.busy_replies, s.shed_batches,
        "X12 {phase}: one Busy per shed batch"
    );
    assert_eq!(
        r.busys, s.shed_batches,
        "X12 {phase}: client saw every Busy"
    );
}

/// X12: throughput/latency of the availability service plus overload
/// accounting.
pub fn serve(quick: bool) {
    banner("X12 — fgcs-service: streamed ingest throughput and overload backpressure");
    let mut cfg = TestbedConfig::default();
    if quick {
        cfg.lab.machines = 4;
        cfg.lab.days = 2;
    } else {
        cfg.lab.machines = 12;
        cfg.lab.days = 7;
    }

    // Phase 1: clean, full-speed, queries interleaved.
    let mut svc = ServiceConfig::for_testbed(&cfg);
    svc.queue_capacity = 4096;
    let mut lg = LoadGenConfig::new(cfg.lab.clone());
    lg.batch_size = 128;
    lg.query_every_batches = 8;
    lg.query_horizon = 1_800;
    let clean = run_phase(svc, &lg);
    reconcile("clean", &clean);
    assert_eq!(
        clean.stats.decode_errors, 0,
        "X12 clean: a clean stream must decode fully"
    );
    assert!(
        clean.report.queries_sent > 0 && clean.report.queries_answered > 0,
        "X12 clean: availability queries must be issued and answered"
    );
    assert_eq!(
        clean.stats.ingested_samples + clean.stats.shed_samples,
        clean.report.samples_sent,
        "X12 clean: every sample accounted"
    );
    println!(
        "clean:    {} machines, {} samples in {:.2} s  ->  {:.0} samples/s ingest",
        clean.report.machines,
        clean.report.samples_sent,
        clean.report.elapsed_secs,
        clean.throughput
    );
    println!(
        "          {} queries answered, latency p50 {:.0} us  p99 {:.0} us",
        clean.report.queries_answered, clean.p50_us, clean.p99_us
    );

    // Phase 2: overload — ingest capacity pinned far below offered load.
    let mut svc = ServiceConfig::for_testbed(&cfg);
    svc.workers = 1;
    svc.queue_capacity = 4;
    svc.ingest_delay_us = 2_000;
    let mut lg = LoadGenConfig::new(cfg.lab.clone());
    lg.batch_size = 16;
    // Ingest capacity is 1/ingest_delay = 500 batches/s = 8k samples/s;
    // pace the fleet to ~4x that so overload is sustained, not a burst.
    lg.samples_per_sec = 32_000 / cfg.lab.machines as u64;
    lg.max_samples_per_machine = Some(if quick { 2_000 } else { 4_000 });
    lg.query_every_batches = 32;
    let over = run_phase(svc, &lg);
    reconcile("overload", &over);
    assert!(
        over.stats.shed_batches > 0,
        "X12 overload: the queue must actually overflow"
    );
    assert!(
        over.report.queries_answered > 0,
        "X12 overload: the server must stay query-responsive under overload"
    );
    let shed_frac = over.stats.shed_batches as f64 / over.report.batches_sent as f64;
    println!(
        "overload: {} batches offered, {} ingested, {} shed ({:.1}% shed), 0 lost silently",
        over.report.batches_sent,
        over.stats.ingested_batches,
        over.stats.shed_batches,
        100.0 * shed_frac
    );
    println!(
        "          queries under overload: {} answered, latency p50 {:.0} us  p99 {:.0} us",
        over.report.queries_answered, over.p50_us, over.p99_us
    );

    let row = |phase: &str, o: &PhaseOutcome| {
        format!(
            "{phase},{},{},{},{:.3},{:.0},{:.0},{:.0},{},{},{}",
            o.report.machines,
            o.report.batches_sent,
            o.report.samples_sent,
            o.report.elapsed_secs,
            o.throughput,
            o.p50_us,
            o.p99_us,
            o.stats.shed_batches,
            o.stats.decode_errors,
            o.report.queries_answered
        )
    };
    let path = write_csv(
        "serve",
        "phase,machines,batches,samples,elapsed_s,samples_per_s,query_p50_us,query_p99_us,\
         shed_batches,decode_errors,queries_answered",
        &[row("clean", &clean), row("overload", &over)],
    )
    .expect("write results/serve.csv");
    println!("wrote {}", path.display());

    let phase_obj = |o: &PhaseOutcome| {
        let mut w = ObjWriter::new();
        w.u64("machines", o.report.machines as u64)
            .u64("batches_sent", o.report.batches_sent)
            .u64("samples_sent", o.report.samples_sent)
            .f64("elapsed_secs", o.report.elapsed_secs)
            .f64("samples_per_sec", o.throughput)
            .f64("query_p50_us", o.p50_us)
            .f64("query_p99_us", o.p99_us)
            .u64("queries_answered", o.report.queries_answered)
            .u64("ingested_batches", o.stats.ingested_batches)
            .u64("shed_batches", o.stats.shed_batches)
            .u64("decode_errors", o.stats.decode_errors);
        w
    };
    let mut bench = ObjWriter::new();
    bench
        .str("benchmark", "serve_throughput")
        .str(
            "description",
            "X12: fgcs-service over localhost TCP. clean = full-speed trace replay with \
             interleaved availability queries; overload = ingest capacity pinned below \
             offered load (1 worker, queue capacity 4, 2 ms/batch), exercising \
             shed-oldest backpressure with exact accounting.",
        )
        .str(
            "command",
            "cargo run --release -p fgcs-experiments --bin fgcs-exp -- serve",
        )
        .obj("clean", phase_obj(&clean))
        .obj("overload", phase_obj(&over));
    std::fs::write("BENCH_serve.json", bench.finish() + "\n").expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
