//! Minimal data-parallel harness for the `fgcs` workspace.
//!
//! The experiment sweeps in this repository are embarrassingly parallel:
//! each `(LH, M, priority)` contention point, each machine-day of the
//! testbed trace, each predictor evaluation fold is independent of the
//! others. The offline crate set does not include `rayon`, so this crate
//! provides the two primitives the workspace needs on top of
//! `std::thread::scope` and an atomic work index:
//!
//! * [`par_map`] — applies a function to every item of a slice on a pool
//!   of scoped worker threads, preserving input order in the output.
//! * [`par_map_indexed`] — like [`par_map`] but hands the item index to
//!   the closure, which simulations use to derive a deterministic
//!   per-item RNG substream (so results do not depend on which thread
//!   happened to pick up which item).
//!
//! Work is distributed by an atomic fetch-add over the item index — a
//! degenerate but effective form of work stealing for items whose cost
//! varies by an order of magnitude or less, which is the case for every
//! sweep in this workspace. Each worker writes results into a disjoint
//! region handed out by `split_off`-style slicing, so no locking is
//! involved on the hot path.
//!
//! Panics in workers are propagated: if any item's closure panics, the
//! calling thread panics after the scope joins (`std::thread::scope`
//! semantics), never silently dropping results.
//!
//! ## Worker count
//!
//! The pool size defaults to `std::thread::available_parallelism()`,
//! capped by the item count. Set the `FGCS_PAR_WORKERS` environment
//! variable to a positive integer to override it — `FGCS_PAR_WORKERS=1`
//! forces fully serial execution (useful for profiling and for
//! confirming that a sweep's output is independent of the worker count).
//!
//! ## Nesting
//!
//! Calls nested inside a worker (e.g. a parallel sweep whose per-point
//! closure itself calls [`par_map`]) run inline on the worker thread
//! rather than spawning a second tier of threads. The outer call already
//! saturates the machine; nesting would only add oversubscription.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

std::thread_local! {
    /// True while the current thread is a pool worker; nested calls see
    /// this and run inline instead of spawning another pool.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Returns the worker count used by [`par_map`]: the `FGCS_PAR_WORKERS`
/// environment variable if set to a positive integer, otherwise the
/// available parallelism — either way capped by the item count (and at
/// least 1). An invalid override (`0`, empty, unparseable) falls back to
/// the default and warns once on stderr instead of being trusted
/// downstream: a typo'd `FGCS_PAR_WORKERS=O8` should not silently
/// serialize a sweep.
pub fn default_workers(items: usize) -> usize {
    let hw_default = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let hw = match std::env::var("FGCS_PAR_WORKERS") {
        Err(_) => hw_default(),
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "fgcs-par: ignoring FGCS_PAR_WORKERS={v:?} \
                         (expected a positive integer); using the default worker count"
                    );
                });
                hw_default()
            }
        },
    };
    hw.min(items).max(1)
}

/// Applies `f` to every element of `items` in parallel, returning results
/// in input order. Runs inline (no threads) when `items.len() <= 1` or
/// when called from within another `fgcs-par` worker.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], but the closure also receives the item's index.
///
/// The index is the idiomatic hook for deterministic parallel RNG: derive
/// the item's random stream from `(seed, index)` rather than from any
/// thread-local state, and the sweep's output is identical no matter how
/// many workers run it.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = default_workers(n);
    if workers == 1 || IN_WORKER.with(|w| w.get()) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Workers claim fixed-size chunks of the index space and buffer each
    // chunk's results locally, so the shared slot table is touched once
    // per chunk rather than once per item.
    let chunk = (n / (workers * 8)).max(1);
    let chunks = n.div_ceil(chunk);
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(n);
                    let buf: Vec<R> = (lo..hi).map(|i| f(i, &items[i])).collect();
                    *slots[c].lock().expect("result slot poisoned") = Some(buf);
                }
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for slot in slots {
        let buf = slot
            .into_inner()
            .expect("result slot poisoned")
            .expect("worker filled every claimed chunk");
        out.extend(buf);
    }
    out
}

/// Parallel fold: maps every item with `f`, then reduces the per-item
/// results in input order with `reduce`, starting from `init`.
///
/// The reduction itself runs on the calling thread in deterministic input
/// order, so non-associative-in-floating-point reductions still produce
/// reproducible output.
pub fn par_map_reduce<T, R, A, F, G>(items: &[T], f: F, init: A, mut reduce: G) -> A
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    let mapped = par_map_indexed(items, f);
    let mut acc = init;
    for r in mapped {
        acc = reduce(acc, r);
    }
    acc
}

/// Runs `n` independent jobs in parallel, returning their results in job
/// order. A convenience wrapper over [`par_map_indexed`] for sweeps that
/// are naturally indexed rather than slice-shaped (e.g. "simulate machine
/// `i` of 20").
pub fn par_jobs<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    par_map_indexed(&idx, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = par_map(&[7u32], |&x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn indexed_passes_correct_indices() {
        let items = vec!["a", "b", "c", "d"];
        let out = par_map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u32> = (0..10_000).collect();
        par_map(&items, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn map_reduce_sums_in_order() {
        let items: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let total = par_map_reduce(&items, |_, &x| x, 0.0, |a, b| a + b);
        assert_eq!(total, 5050.0);
    }

    #[test]
    fn par_jobs_indexed() {
        let out = par_jobs(5, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Items with wildly different cost must still return in order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 100_000 {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn nested_calls_run_inline() {
        let outer: Vec<u64> = (0..8).collect();
        let out = par_map(&outer, |&x| {
            let inner: Vec<u64> = (0..100).collect();
            par_map(&inner, |&y| x * 1000 + y).iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..8)
            .map(|x| (0..100).map(|y| x * 1000 + y).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn chunked_results_cover_non_divisible_lengths() {
        // Lengths straddling chunk boundaries must not drop or reorder.
        for n in [2usize, 3, 7, 63, 64, 65, 257] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map_indexed(&items, |i, &x| {
                assert_eq!(i, x);
                x + 1
            });
            assert_eq!(out, (1..=n).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..100).collect();
        par_map(&items, |&x| {
            if x == 42 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn default_workers_bounds() {
        assert_eq!(default_workers(0), 1);
        assert_eq!(default_workers(1), 1);
        assert!(default_workers(1000) >= 1);
    }

    #[test]
    fn worker_env_override() {
        // Serialized via a process-wide lock would be overkill for one
        // test; set, check, and restore in one place instead.
        let prev = std::env::var("FGCS_PAR_WORKERS").ok();
        std::env::set_var("FGCS_PAR_WORKERS", "3");
        assert_eq!(default_workers(1000), 3);
        std::env::set_var("FGCS_PAR_WORKERS", "0"); // invalid: ignored
        assert!(default_workers(1000) >= 1);
        std::env::set_var("FGCS_PAR_WORKERS", "junk"); // invalid: ignored
        assert!(default_workers(1000) >= 1);
        match prev {
            Some(v) => std::env::set_var("FGCS_PAR_WORKERS", v),
            None => std::env::remove_var("FGCS_PAR_WORKERS"),
        }
    }
}
