//! The scheduler service end to end: the `Sched*` wire vocabulary over
//! a live `SchedServer`, quota enforcement at the protocol surface,
//! revocation-driven re-placement, and (on Linux) the full loop against
//! a real availability service through the cluster router — verifying
//! the `harvestable` stat bit and `QueryAvail` predictions actually
//! drive placement decisions across process^W socket boundaries.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fgcs_sched::{
    AvailabilitySource, MachineView, Policy, SchedConfig, SchedServeConfig, SchedServer,
};
use fgcs_service::{ClientConfig, ServiceClient};
use fgcs_wire::{ErrorCode, Frame};

/// An in-process availability source tests can mutate mid-run.
#[derive(Clone, Default)]
struct FakeSource {
    state: Arc<Mutex<Vec<MachineView>>>,
}

impl FakeSource {
    fn with_machines(ids: &[u32]) -> FakeSource {
        let views = ids
            .iter()
            .map(|&machine| MachineView {
                machine,
                harvestable: true,
                occurrences: 0,
            })
            .collect();
        FakeSource {
            state: Arc::new(Mutex::new(views)),
        }
    }

    fn set_harvestable(&self, machine: u32, harvestable: bool) {
        let mut views = self.state.lock().unwrap();
        for v in views.iter_mut() {
            if v.machine == machine {
                v.harvestable = harvestable;
            }
        }
    }
}

impl AvailabilitySource for FakeSource {
    fn machines(&mut self) -> std::io::Result<Vec<MachineView>> {
        Ok(self.state.lock().unwrap().clone())
    }

    fn survival(&mut self, _machine: u32, _window: u64) -> std::io::Result<f64> {
        Ok(1.0)
    }
}

fn connect(addr: &str) -> ServiceClient {
    let mut cfg = ClientConfig::new(addr);
    cfg.backoff_unit_ms = 1;
    ServiceClient::connect(cfg).expect("client connects")
}

fn query_job(client: &mut ServiceClient, id: u64) -> (u8, Option<u32>, u32) {
    match client.request(&Frame::SchedQueryJob { id }).unwrap() {
        Frame::SchedJobReply {
            state,
            machine,
            evictions,
            ..
        } => (state, machine, evictions),
        other => panic!("job reply expected, got tag {}", other.tag()),
    }
}

/// Polls until `pred` holds on the job or the deadline passes.
fn wait_job(
    client: &mut ServiceClient,
    id: u64,
    what: &str,
    mut pred: impl FnMut(u8, Option<u32>, u32) -> bool,
) -> (u8, Option<u32>, u32) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (state, machine, evictions) = query_job(client, id);
        if pred(state, machine, evictions) {
            return (state, machine, evictions);
        }
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn submit(client: &mut ServiceClient, user: u32, work: u64) -> Result<u64, ErrorCode> {
    match client.request(&Frame::SchedSubmit { user, work }).unwrap() {
        Frame::SchedJobReply { id, .. } => Ok(id),
        Frame::Error { code, .. } => Err(code),
        other => panic!("submit reply expected, got tag {}", other.tag()),
    }
}

#[test]
fn jobs_run_complete_and_respect_quotas_over_the_wire() {
    let source = FakeSource::with_machines(&[1, 2, 3, 4]);
    let server = SchedServer::start(
        SchedServeConfig {
            tick_ms: 2,
            tick_secs: 60,
            ..SchedServeConfig::default()
        },
        SchedConfig {
            max_backlog_factor: 2,
            pool_extra: 1,
            ..SchedConfig::default()
        },
        &[(1, 1), (2, 1)],
        source,
    )
    .expect("sched server starts");
    let addr = server.local_addr().to_string();
    let mut client = connect(&addr);

    // A 2-tick job completes.
    let id = submit(&mut client, 1, 120).expect("admitted");
    wait_job(&mut client, id, "job completes", |state, _, _| state == 3);

    // Admission control: backlog cap = factor 2 × allowance 1 = 2.
    let a = submit(&mut client, 2, 100_000).expect("first fits");
    let _b = submit(&mut client, 2, 100_000).expect("second fits");
    assert_eq!(
        submit(&mut client, 2, 100_000),
        Err(ErrorCode::QuotaExceeded),
        "third submission must be refused"
    );
    // Unknown users are refused too (strict mode: default_base 0).
    assert_eq!(submit(&mut client, 99, 60), Err(ErrorCode::QuotaExceeded));

    // Only one of user 2's jobs may run on base quota 1...
    wait_job(&mut client, a, "first long job runs", |state, _, _| {
        state == 2
    });
    let stats = server.stats();
    assert_eq!(stats.running, 1, "base quota gates dispatch: {stats:?}");

    // ...until an extra slot is borrowed from the pool.
    match client
        .request(&Frame::SchedShare {
            user: 2,
            op: 1,
            amount: 5,
        })
        .unwrap()
    {
        Frame::SchedShareReply {
            base,
            extra,
            pool_free,
            ..
        } => {
            assert_eq!((base, extra, pool_free), (1, 1, 0), "pool of 1 runs dry");
        }
        other => panic!("share reply expected, got tag {}", other.tag()),
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().running < 2 {
        assert!(Instant::now() < deadline, "extra slot never dispatched");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Conservation at the wire surface.
    match client.request(&Frame::SchedQueryStats).unwrap() {
        Frame::SchedStatsReply(s) => {
            assert_eq!(s.submitted, s.completed + s.queued + s.running, "{s:?}");
            assert_eq!(s.rejected, 2);
        }
        other => panic!("stats reply expected, got tag {}", other.tag()),
    }
    // An unknown id earns a typed error, not a hang.
    match client
        .request(&Frame::SchedQueryJob { id: 10_000 })
        .unwrap()
    {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
        other => panic!("error expected, got tag {}", other.tag()),
    }
    server.shutdown();
}

#[test]
fn revocation_requeues_and_replaces_the_guest() {
    let source = FakeSource::with_machines(&[1, 2]);
    let handle = source.clone();
    let server = SchedServer::start(
        SchedServeConfig {
            tick_ms: 2,
            tick_secs: 60,
            ..SchedServeConfig::default()
        },
        SchedConfig::default(),
        &[(1, 1)],
        source,
    )
    .expect("sched server starts");
    let mut client = connect(&server.local_addr().to_string());

    let id = submit(&mut client, 1, 1_000_000).expect("admitted");
    let (_, host, _) = wait_job(&mut client, id, "guest placed", |state, _, _| state == 2);
    let host = host.expect("running job has a host");

    // The host is revoked: the guest must requeue and land elsewhere.
    handle.set_harvestable(host, false);
    let (_, new_host, evictions) = wait_job(
        &mut client,
        id,
        "guest re-placed after revocation",
        |state, machine, _| state == 2 && machine.is_some() && machine != Some(host),
    );
    assert_ne!(new_host, Some(host));
    assert!(evictions >= 1, "the kill was accounted as an eviction");
    server.shutdown();
}

/// The full loop on Linux: a real availability service, the cluster
/// router as the scheduler's source, and guests placed/evicted off the
/// service's own detector state — `harvestable` bits and `QueryAvail`
/// predictions crossing two socket hops.
#[cfg(target_os = "linux")]
#[test]
fn scheduler_follows_a_real_availability_service() {
    use fgcs_sched::ClusterSource;
    use fgcs_service::cluster::{ClusterClient, ClusterConfig, ShardSpec};
    use fgcs_service::{Backend, Server, ServiceConfig};
    use fgcs_wire::{SampleLoad, WireSample};

    let svc = Server::start(ServiceConfig {
        backend: Backend::Threads,
        ..Default::default()
    })
    .expect("availability service starts");
    let svc_addr = svc.local_addr().to_string();

    let idle = |t: u64, alive: bool| WireSample {
        t,
        load: SampleLoad::Direct(0.05),
        host_resident_mb: 100,
        alive,
    };
    let mut feeder = connect(&svc_addr);
    for machine in 1..=3u32 {
        let samples: Vec<WireSample> = (0..50).map(|i| idle(i * 15, true)).collect();
        let reply = feeder
            .request(&Frame::SampleBatch { machine, samples })
            .unwrap();
        assert!(matches!(reply, Frame::Ack { .. }));
    }

    let cluster = ClusterClient::connect(ClusterConfig::new(vec![ShardSpec {
        name: "s0".to_string(),
        primary_addr: svc_addr.clone(),
        follower_addr: None,
    }]))
    .expect("router connects");
    let server = SchedServer::start(
        SchedServeConfig {
            tick_ms: 2,
            tick_secs: 60,
            ..SchedServeConfig::default()
        },
        SchedConfig {
            policy: Policy::Predictive,
            ..SchedConfig::default()
        },
        &[(1, 2)],
        ClusterSource::new(cluster),
    )
    .expect("sched server starts");
    let mut client = connect(&server.local_addr().to_string());

    let id = submit(&mut client, 1, 1_000_000).expect("admitted");
    let (_, host, _) = wait_job(&mut client, id, "guest placed off real stats", |s, _, _| {
        s == 2
    });
    let host = host.expect("running job has a host");

    // Kill the host at the *service* level: dead samples flip its
    // detector state, the stats bit goes false, the scheduler evicts.
    let dead: Vec<WireSample> = (50..60).map(|i| idle(i * 15, false)).collect();
    let reply = feeder
        .request(&Frame::SampleBatch {
            machine: host,
            samples: dead,
        })
        .unwrap();
    assert!(matches!(reply, Frame::Ack { .. }));

    wait_job(
        &mut client,
        id,
        "guest re-placed off the service's revocation",
        |state, machine, evictions| state == 2 && machine != Some(host) && evictions >= 1,
    );
    server.shutdown();
    svc.shutdown();
}
