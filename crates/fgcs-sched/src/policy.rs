//! Placement policies: how a queued guest picks its host.
//!
//! All three policies choose among the same candidate set (harvestable,
//! unoccupied machines) and feed the same dispatch path, so the X14
//! comparison is paired: the only degree of freedom is the ranking.

use fgcs_stats::Rng;

use crate::source::MachineView;

/// The placement ranking in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Uniform-random over the candidates — the paper's oblivious
    /// baseline.
    Random,
    /// Predictionless greedy: fewest unavailability occurrences
    /// observed so far (a pure count, no temporal model), lowest id on
    /// ties. The strongest heuristic available without a predictor.
    Greedy,
    /// Prediction-driven: highest predicted time-to-unavailability
    /// ([`fgcs_predict::time_to_failure`]) for the job's remaining
    /// runtime, survival probability over that runtime on ties.
    Predictive,
}

impl Policy {
    /// Stable lower-case name, used in CSV rows and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Random => "random",
            Policy::Greedy => "greedy",
            Policy::Predictive => "predictive",
        }
    }

    /// Inverse of [`Policy::name`].
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "random" => Some(Policy::Random),
            "greedy" => Some(Policy::Greedy),
            "predictive" => Some(Policy::Predictive),
            _ => None,
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Picks a host for a job with `remaining` guest-seconds left, or
/// `None` when `candidates` is empty. `survival(machine, window)` is
/// only consulted by [`Policy::Predictive`]; over the cluster it costs
/// one `QueryAvail` round trip per probe.
pub(crate) fn choose(
    policy: Policy,
    candidates: &[MachineView],
    remaining: u64,
    place_threshold: f64,
    max_horizon: u64,
    rng: &mut Rng,
    survival: &mut dyn FnMut(u32, u64) -> f64,
) -> Option<u32> {
    if candidates.is_empty() {
        return None;
    }
    match policy {
        Policy::Random => {
            let i = rng.below(candidates.len() as u64) as usize;
            Some(candidates[i].machine)
        }
        Policy::Greedy => candidates
            .iter()
            .min_by_key(|c| (c.occurrences, c.machine))
            .map(|c| c.machine),
        Policy::Predictive => {
            let horizon = max_horizon.max(remaining).max(1);
            let mut best: Option<(u64, f64, u32)> = None;
            for c in candidates {
                let m = c.machine;
                let ttf =
                    fgcs_predict::time_to_failure(|w| survival(m, w), place_threshold, horizon);
                let p = survival(m, remaining);
                let better = match best {
                    None => true,
                    // Highest time-to-unavailability wins; survival
                    // over the remaining runtime breaks ties, lowest
                    // id makes the whole ranking deterministic.
                    Some((bt, bp, bm)) => {
                        ttf > bt || (ttf == bt && (p > bp || (p == bp && m < bm)))
                    }
                };
                if better {
                    best = Some((ttf, p, m));
                }
            }
            best.map(|(_, _, m)| m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(machine: u32, occurrences: u64) -> MachineView {
        MachineView {
            machine,
            harvestable: true,
            occurrences,
        }
    }

    #[test]
    fn greedy_prefers_the_machine_with_fewest_occurrences() {
        let cands = vec![view(1, 9), view(2, 3), view(3, 3)];
        let mut rng = Rng::new(1);
        let got = choose(
            Policy::Greedy,
            &cands,
            600,
            0.5,
            86_400,
            &mut rng,
            &mut |_, _| 1.0,
        );
        assert_eq!(got, Some(2), "fewest occurrences, lowest id tie-break");
    }

    #[test]
    fn predictive_prefers_the_longest_time_to_unavailability() {
        let cands = vec![view(1, 0), view(2, 0), view(3, 0)];
        let mut rng = Rng::new(1);
        // Machine 2 survives ~2h at the threshold, the others ~20min.
        let mut survival = |m: u32, w: u64| -> f64 {
            let ttf = if m == 2 { 7_200 } else { 1_200 };
            if w <= ttf {
                1.0
            } else {
                0.0
            }
        };
        let got = choose(
            Policy::Predictive,
            &cands,
            3_600,
            0.5,
            86_400,
            &mut rng,
            &mut survival,
        );
        assert_eq!(got, Some(2));
    }

    #[test]
    fn random_is_seed_deterministic_and_in_range() {
        let cands = vec![view(4, 0), view(5, 0), view(6, 0)];
        let pick = |seed: u64| {
            let mut rng = Rng::new(seed);
            choose(
                Policy::Random,
                &cands,
                60,
                0.5,
                3_600,
                &mut rng,
                &mut |_, _| 1.0,
            )
            .unwrap()
        };
        assert_eq!(pick(9), pick(9));
        assert!(cands.iter().any(|c| c.machine == pick(123)));
    }

    #[test]
    fn empty_candidate_sets_place_nothing() {
        let mut rng = Rng::new(0);
        for p in [Policy::Random, Policy::Greedy, Policy::Predictive] {
            assert_eq!(
                choose(p, &[], 60, 0.5, 3_600, &mut rng, &mut |_, _| 1.0),
                None
            );
        }
    }
}
