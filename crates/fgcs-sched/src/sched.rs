//! The scheduler core: job lifecycle, checkpointed progress, eviction
//! and SLO-driven migration.
//!
//! Deliberately I/O-free and clock-free: callers (the serve loop, the
//! X14 replay, tests) drive it with explicit timestamps and feed it
//! machine views/predictions, so the same state machine is exercised
//! everywhere. The revocation semantics match `fgcs-sim`/`fgcs-testbed`:
//! when a host turns unavailable the guest is killed where it stands
//! and loses everything since its last checkpoint. A *migration* is the
//! controlled variant — the guest checkpoints first (banking all
//! progress), pays a fixed re-placement cost, and requeues.
//!
//! Migration state machine (DESIGN.md §14):
//!
//! ```text
//!            submit                 place
//!   (admit) ────────▶ Queued ────────────────▶ Running ──▶ Done
//!                       ▲                        │ │
//!                       │  evict (revocation):   │ │ complete at
//!                       │  lose work since last ◀┘ │ anchor+remaining
//!                       │  checkpoint              │
//!                       └──────────────────────────┘
//!                          migrate (SLO): bank all progress,
//!                          pay `migration_cost`, avoid old host
//! ```

use std::collections::{BTreeMap, VecDeque};

use fgcs_predict::MigrationTrigger;
use fgcs_stats::Rng;
use fgcs_wire::SchedStatsPayload;

use crate::fairshare::{Fairshare, ShareStatus};
use crate::policy::{choose, Policy};
use crate::source::MachineView;

/// Scheduler tuning. Defaults suit the X14 lab traces: 15-minute
/// checkpoints, migration when the predicted chance of losing the host
/// within 30 minutes reaches 35%, and a 2-minute re-placement cost.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Placement ranking.
    pub policy: Policy,
    /// Borrowable extra slots in the fairshare pool.
    pub pool_extra: u64,
    /// Guest-seconds of runtime between automatic checkpoints.
    pub checkpoint_every: u64,
    /// When the predictor's failure probability over
    /// `migrate_lookahead` crosses this trigger, the guest migrates.
    pub migration: MigrationTrigger,
    /// Lookahead window for the migration check, seconds.
    pub migrate_lookahead: u64,
    /// Guest-seconds of progress a migration costs (checkpoint
    /// transfer + restart), charged as wasted work.
    pub migration_cost: u64,
    /// Survival threshold defining "predicted time to unavailability"
    /// for placement ranking.
    pub place_threshold: f64,
    /// Cap on the time-to-failure search horizon, seconds.
    pub place_horizon: u64,
    /// Admission control: a user may hold at most
    /// `max_backlog_factor × max(allowance, 1)` outstanding
    /// (queued + running) jobs.
    pub max_backlog_factor: u64,
    /// Seed for the random placement baseline.
    pub seed: u64,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            policy: Policy::Predictive,
            pool_extra: 2,
            checkpoint_every: 900,
            migration: MigrationTrigger::new(0.35),
            migrate_lookahead: 1800,
            migration_cost: 120,
            place_threshold: 0.5,
            place_horizon: 6 * 3600,
            max_backlog_factor: 4,
            seed: 0x5eed,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a host (and a fairshare slot).
    Queued,
    /// Running on `machine`; un-banked progress accrues since `anchor`.
    Running {
        /// Host machine id.
        machine: u32,
        /// Timestamp progress is accounted from (advanced by each
        /// checkpoint).
        anchor: u64,
    },
    /// All `work` guest-seconds delivered.
    Done {
        /// Completion timestamp.
        at: u64,
    },
}

impl JobState {
    /// Wire code 1..=3 (`Frame::SchedJobReply`).
    pub fn code(self) -> u8 {
        match self {
            JobState::Queued => 1,
            JobState::Running { .. } => 2,
            JobState::Done { .. } => 3,
        }
    }
}

/// One guest job.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Scheduler-wide id, monotone from 1.
    pub id: u64,
    /// Owning user.
    pub user: u32,
    /// Total work requirement, guest-seconds.
    pub work: u64,
    /// Checkpointed (banked) progress, guest-seconds.
    pub done: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Host revocations suffered.
    pub evictions: u32,
    /// Proactive migrations performed.
    pub migrations: u32,
    /// Submission timestamp.
    pub submitted: u64,
    /// Most recent host, avoided on the next placement right after a
    /// migration (the predictor just condemned it).
    pub last_host: Option<u32>,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The user's outstanding backlog is at its quota-derived cap.
    QuotaExceeded,
    /// The user is not registered with the fairshare ledger.
    UnknownUser,
}

/// The scheduler: queue, running set, fairshare ledger, counters.
pub struct Scheduler {
    cfg: SchedConfig,
    fairshare: Fairshare,
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    /// machine → job id, one guest per machine.
    occupied: BTreeMap<u32, u64>,
    next_id: u64,
    rng: Rng,
    submitted: u64,
    completed: u64,
    completed_work: u64,
    rejected: u64,
    evictions: u64,
    migrations: u64,
    wasted_secs: u64,
    /// Ticks where some user's running count exceeded their allowance.
    /// Zero by construction ([`Fairshare::try_acquire`] is the only
    /// path into Running); exported so experiments can assert it.
    quota_violations: u64,
    /// Per-user peak concurrent running jobs.
    peaks: BTreeMap<u32, u64>,
}

impl Scheduler {
    /// Creates an empty scheduler; register users before submitting.
    pub fn new(cfg: SchedConfig) -> Scheduler {
        Scheduler {
            fairshare: Fairshare::new(cfg.pool_extra),
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            occupied: BTreeMap::new(),
            next_id: 1,
            rng: Rng::new(cfg.seed),
            submitted: 0,
            completed: 0,
            completed_work: 0,
            rejected: 0,
            evictions: 0,
            migrations: 0,
            wasted_secs: 0,
            quota_violations: 0,
            peaks: BTreeMap::new(),
            cfg,
        }
    }

    /// Registers `user` with `base` owned slots.
    pub fn add_user(&mut self, user: u32, base: u64) {
        self.fairshare.add_user(user, base);
    }

    /// Whether `user` is registered.
    pub fn has_user(&self, user: u32) -> bool {
        self.fairshare.has_user(user)
    }

    /// Fairshare `request` op; returns slots granted.
    pub fn share_request(&mut self, user: u32, n: u64) -> u64 {
        self.fairshare.request(user, n)
    }

    /// Fairshare `release` op; returns slots returned to the pool.
    pub fn share_release(&mut self, user: u32, n: u64) -> u64 {
        self.fairshare.release(user, n)
    }

    /// Fairshare `status` op.
    pub fn share_status(&self, user: u32) -> ShareStatus {
        self.fairshare.status(user)
    }

    /// Admission control + enqueue. `Err` rejections never become jobs.
    pub fn submit(&mut self, user: u32, work: u64, now: u64) -> Result<u64, SubmitError> {
        if !self.fairshare.has_user(user) {
            self.rejected += 1;
            return Err(SubmitError::UnknownUser);
        }
        let outstanding = self
            .jobs
            .values()
            .filter(|j| j.user == user && !matches!(j.state, JobState::Done { .. }))
            .count() as u64;
        let cap = self.cfg.max_backlog_factor * self.fairshare.allowance(user).max(1);
        if outstanding >= cap {
            self.rejected += 1;
            return Err(SubmitError::QuotaExceeded);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.submitted += 1;
        self.jobs.insert(
            id,
            Job {
                id,
                user,
                work: work.max(1),
                done: 0,
                state: JobState::Queued,
                evictions: 0,
                migrations: 0,
                submitted: now,
                last_host: None,
            },
        );
        self.queue.push_back(id);
        Ok(id)
    }

    /// Accrues progress for every running job up to `now`: banks full
    /// checkpoints and completes jobs whose remaining work fits before
    /// `now` (at their exact completion instant).
    pub fn advance(&mut self, now: u64) {
        let running: Vec<u64> = self.occupied.values().copied().collect();
        for id in running {
            self.bank(id, now);
        }
    }

    /// Host `machine` was revoked at `now` (the service reported a
    /// transition out of the available states, or the replayed trace
    /// says so). The guest there — if any — is killed: progress since
    /// its last checkpoint is wasted, and the job requeues at the
    /// front.
    pub fn on_unavailable(&mut self, machine: u32, now: u64) {
        let Some(&id) = self.occupied.get(&machine) else {
            return;
        };
        self.bank(id, now);
        // Banking may have completed the job just before the revocation.
        let Some(&id) = self.occupied.get(&machine) else {
            return;
        };
        let job = self.jobs.get_mut(&id).expect("occupied job exists");
        let JobState::Running { anchor, .. } = job.state else {
            unreachable!("occupied job not running");
        };
        let lost = now.saturating_sub(anchor);
        self.wasted_secs += lost;
        self.evictions += 1;
        job.evictions += 1;
        job.state = JobState::Queued;
        job.last_host = Some(machine);
        let user = job.user;
        self.queue.push_front(id);
        self.occupied.remove(&machine);
        self.fairshare.yield_slot(user);
    }

    /// SLO migration sweep at `now`: any guest whose host fails the
    /// [`MigrationTrigger`] over the lookahead window checkpoints
    /// everything, pays [`SchedConfig::migration_cost`] (charged as
    /// wasted work), and requeues avoiding that host. Returns how many
    /// guests moved.
    pub fn check_migrations(&mut self, now: u64, survival: &mut dyn FnMut(u32, u64) -> f64) -> u64 {
        let hosts: Vec<(u32, u64)> = self.occupied.iter().map(|(m, j)| (*m, *j)).collect();
        let mut moved = 0;
        for (machine, id) in hosts {
            let surv = survival(machine, self.cfg.migrate_lookahead);
            if !self.cfg.migration.should_migrate(surv) {
                continue;
            }
            self.bank(id, now);
            if !self.occupied.contains_key(&machine) {
                continue; // banking completed it under the wire
            }
            let job = self.jobs.get_mut(&id).expect("occupied job exists");
            let JobState::Running { anchor, .. } = job.state else {
                unreachable!("occupied job not running");
            };
            // Controlled checkpoint: bank the partial progress too,
            // then charge the migration cost against it.
            job.done = (job.done + now.saturating_sub(anchor)).min(job.work - 1);
            job.done = job.done.saturating_sub(self.cfg.migration_cost);
            job.state = JobState::Queued;
            job.last_host = Some(machine);
            job.migrations += 1;
            let user = job.user;
            self.wasted_secs += self.cfg.migration_cost;
            self.migrations += 1;
            moved += 1;
            self.queue.push_front(id);
            self.occupied.remove(&machine);
            self.fairshare.yield_slot(user);
        }
        moved
    }

    /// Drains the queue onto free harvestable machines at `now`,
    /// respecting fairshare allowances. Jobs whose user is out of
    /// slots stay queued in order; placement stops when no candidate
    /// machines remain.
    pub fn place(
        &mut self,
        now: u64,
        views: &[MachineView],
        survival: &mut dyn FnMut(u32, u64) -> f64,
    ) {
        let mut free: Vec<MachineView> = views
            .iter()
            .filter(|v| v.harvestable && !self.occupied.contains_key(&v.machine))
            .copied()
            .collect();
        let mut skipped: Vec<u64> = Vec::new();
        while let Some(id) = self.queue.pop_front() {
            if free.is_empty() {
                self.queue.push_front(id);
                break;
            }
            let (user, remaining, avoid) = {
                let job = &self.jobs[&id];
                (
                    job.user,
                    job.work.saturating_sub(job.done).max(1),
                    job.last_host,
                )
            };
            if !self.fairshare.try_acquire(user) {
                skipped.push(id);
                continue;
            }
            // Right after a migration the predictor just condemned the
            // old host; only go back when it is the sole option.
            let pool: Vec<MachineView> = match avoid {
                Some(a) if free.len() > 1 => {
                    free.iter().filter(|v| v.machine != a).copied().collect()
                }
                _ => free.clone(),
            };
            let chosen = choose(
                self.cfg.policy,
                &pool,
                remaining,
                self.cfg.place_threshold,
                self.cfg.place_horizon,
                &mut self.rng,
                survival,
            );
            match chosen {
                Some(machine) => {
                    free.retain(|v| v.machine != machine);
                    self.occupied.insert(machine, id);
                    let job = self.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running {
                        machine,
                        anchor: now,
                    };
                    let running = self.running_of(user);
                    let peak = self.peaks.entry(user).or_insert(0);
                    *peak = (*peak).max(running);
                    if running > self.fairshare.allowance(user) {
                        self.quota_violations += 1;
                    }
                }
                None => {
                    self.fairshare.yield_slot(user);
                    skipped.push(id);
                }
            }
        }
        // Skipped jobs keep their relative order ahead of later
        // arrivals.
        for id in skipped.into_iter().rev() {
            self.queue.push_front(id);
        }
    }

    /// One job by id.
    pub fn job(&self, id: u64) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// The running set as `(machine, job id)` pairs.
    pub fn hosts(&self) -> Vec<(u32, u64)> {
        self.occupied.iter().map(|(m, j)| (*m, *j)).collect()
    }

    /// Currently running jobs of `user`.
    pub fn running_of(&self, user: u32) -> u64 {
        self.occupied
            .values()
            .filter(|id| self.jobs[id].user == user)
            .count() as u64
    }

    /// Per-user peak concurrent running jobs observed so far.
    pub fn peak_running(&self, user: u32) -> u64 {
        self.peaks.get(&user).copied().unwrap_or(0)
    }

    /// Ticks where a user exceeded their allowance (always 0 unless
    /// the quota gate is broken — experiments assert on it).
    pub fn quota_violations(&self) -> u64 {
        self.quota_violations
    }

    /// Total guest-seconds of completed jobs.
    pub fn completed_work(&self) -> u64 {
        self.completed_work
    }

    /// Wire-shaped counters. The conservation identity
    /// `submitted == completed + queued + running` holds because
    /// rejected submissions never become jobs and evicted/migrated
    /// jobs return to the queue.
    pub fn stats(&self) -> SchedStatsPayload {
        SchedStatsPayload {
            submitted: self.submitted,
            completed: self.completed,
            rejected: self.rejected,
            evictions: self.evictions,
            migrations: self.migrations,
            wasted_secs: self.wasted_secs,
            queued: self.queue.len() as u64,
            running: self.occupied.len() as u64,
        }
    }

    /// Banks progress for one running job up to `now`: whole
    /// checkpoints move `done`/`anchor` forward; completion fires at
    /// the exact instant the remaining work is delivered.
    fn bank(&mut self, id: u64, now: u64) {
        let job = self.jobs.get_mut(&id).expect("banking a known job");
        let JobState::Running { machine, anchor } = job.state else {
            return;
        };
        let finish = anchor + (job.work - job.done);
        if finish <= now {
            job.done = job.work;
            job.state = JobState::Done { at: finish };
            let user = job.user;
            self.completed += 1;
            self.completed_work += job.work;
            self.occupied.remove(&machine);
            self.fairshare.yield_slot(user);
            return;
        }
        let ckpt = self.cfg.checkpoint_every.max(1);
        let banked = (now.saturating_sub(anchor) / ckpt) * ckpt;
        if banked > 0 {
            job.done += banked;
            job.state = JobState::Running {
                machine,
                anchor: anchor + banked,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(ids: &[u32]) -> Vec<MachineView> {
        ids.iter()
            .map(|&machine| MachineView {
                machine,
                harvestable: true,
                occurrences: 0,
            })
            .collect()
    }

    fn sure(_: u32, _: u64) -> f64 {
        1.0
    }

    fn cfg() -> SchedConfig {
        SchedConfig {
            checkpoint_every: 100,
            migration_cost: 30,
            pool_extra: 2,
            ..SchedConfig::default()
        }
    }

    #[test]
    fn eviction_loses_exactly_the_unbanked_progress() {
        let mut s = Scheduler::new(cfg());
        s.add_user(1, 1);
        let id = s.submit(1, 1000, 0).unwrap();
        s.place(0, &views(&[7]), &mut sure);
        assert!(matches!(s.job(id).unwrap().state, JobState::Running { .. }));

        s.advance(350);
        assert_eq!(s.job(id).unwrap().done, 300, "three banked checkpoints");
        s.on_unavailable(7, 350);
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::Queued);
        assert_eq!(j.done, 300, "banked work survives the kill");
        assert_eq!(j.evictions, 1);
        assert_eq!(s.stats().wasted_secs, 50, "350 − 300 lost");
        assert_eq!(s.share_status(1).in_use, 0, "slot yielded");
    }

    #[test]
    fn completion_fires_at_the_exact_instant() {
        let mut s = Scheduler::new(cfg());
        s.add_user(1, 1);
        let id = s.submit(1, 1000, 0).unwrap();
        s.place(0, &views(&[7]), &mut sure);
        s.advance(5000);
        match s.job(id).unwrap().state {
            JobState::Done { at } => assert_eq!(at, 1000),
            other => panic!("not done: {other:?}"),
        }
        let st = s.stats();
        assert_eq!((st.completed, st.running, st.queued), (1, 0, 0));
        assert_eq!(s.completed_work(), 1000);
    }

    #[test]
    fn migration_banks_progress_and_avoids_the_old_host() {
        let mut s = Scheduler::new(cfg());
        s.add_user(1, 1);
        let id = s.submit(1, 1000, 0).unwrap();
        s.place(0, &views(&[3, 7]), &mut sure);
        let first = match s.job(id).unwrap().state {
            JobState::Running { machine, .. } => machine,
            other => panic!("not running: {other:?}"),
        };

        // At t=250: 2 checkpoints banked (200), 50 un-banked. The host
        // is condemned, so migration banks all 250 then charges 30.
        let moved = s.check_migrations(250, &mut |m, _| if m == first { 0.0 } else { 1.0 });
        assert_eq!(moved, 1);
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::Queued);
        assert_eq!(j.done, 220, "250 banked − 30 migration cost");
        assert_eq!(j.migrations, 1);
        assert_eq!(j.evictions, 0, "migration is not an eviction");
        assert_eq!(s.stats().wasted_secs, 30, "only the cost is wasted");

        s.place(250, &views(&[3, 7]), &mut sure);
        match s.job(id).unwrap().state {
            JobState::Running { machine, .. } => {
                assert_ne!(machine, first, "condemned host avoided")
            }
            other => panic!("not running: {other:?}"),
        }
    }

    #[test]
    fn admission_control_caps_the_backlog() {
        let mut s = Scheduler::new(SchedConfig {
            max_backlog_factor: 2,
            pool_extra: 0,
            ..cfg()
        });
        s.add_user(1, 1);
        assert!(s.submit(1, 100, 0).is_ok());
        assert!(s.submit(1, 100, 0).is_ok());
        assert_eq!(s.submit(1, 100, 0), Err(SubmitError::QuotaExceeded));
        assert_eq!(s.submit(9, 100, 0), Err(SubmitError::UnknownUser));
        assert_eq!(s.stats().rejected, 2);
        assert_eq!(s.stats().submitted, 2);
    }

    #[test]
    fn quotas_gate_dispatch_and_extra_slots_lift_the_gate() {
        let mut s = Scheduler::new(cfg());
        s.add_user(1, 1);
        s.add_user(2, 1);
        let _ = s.submit(1, 500, 0).unwrap();
        let _ = s.submit(1, 500, 0).unwrap();
        let b1 = s.submit(2, 500, 0).unwrap();
        s.place(0, &views(&[1, 2, 3, 4]), &mut sure);
        assert_eq!(s.running_of(1), 1, "user 1 capped at base");
        assert_eq!(s.running_of(2), 1);
        assert!(matches!(s.job(b1).unwrap().state, JobState::Running { .. }));

        assert_eq!(s.share_request(1, 1), 1);
        s.place(0, &views(&[1, 2, 3, 4]), &mut sure);
        assert_eq!(s.running_of(1), 2, "extra slot lifts the gate");
        assert_eq!(s.peak_running(1), 2);
        assert_eq!(s.quota_violations(), 0);

        // Conservation: submitted == completed + queued + running.
        let st = s.stats();
        assert_eq!(st.submitted, st.completed + st.queued + st.running);
    }

    #[test]
    fn skipped_users_do_not_block_others() {
        let mut s = Scheduler::new(SchedConfig {
            pool_extra: 0,
            ..cfg()
        });
        s.add_user(1, 1);
        s.add_user(2, 1);
        let _ = s.submit(1, 500, 0).unwrap();
        let _ = s.submit(1, 500, 0).unwrap(); // will be slot-starved
        let b = s.submit(2, 500, 0).unwrap(); // behind it in the queue
        s.place(0, &views(&[1, 2, 3]), &mut sure);
        assert!(
            matches!(s.job(b).unwrap().state, JobState::Running { .. }),
            "user 2 places even though user 1's second job is starved"
        );
    }
}
