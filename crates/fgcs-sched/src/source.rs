//! Where the scheduler learns about machines: stats + predictions.
//!
//! The scheduler core ([`crate::sched::Scheduler`]) is deliberately
//! I/O-free; the serve loop feeds it through this trait. Production
//! uses [`ClusterSource`] — the sharded availability cluster via
//! `fgcs_service::ClusterClient` — while tests and the X14 experiment
//! substitute in-process sources.

use std::io;

/// One machine as the scheduler sees it: the `harvestable` placement
/// bit and the occurrence count (`MachineStat` over the wire), which is
/// all the predictionless policies get to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineView {
    /// Machine id.
    pub machine: u32,
    /// A guest may be placed here right now (available, spike guard
    /// quiet) — the service-side `Frame::Place` predicate.
    pub harvestable: bool,
    /// Unavailability occurrences recorded so far.
    pub occurrences: u64,
}

/// The scheduler's window onto the cluster.
pub trait AvailabilitySource {
    /// Every machine the cluster knows about, with current placement
    /// bits. Called once per scheduler tick.
    fn machines(&mut self) -> io::Result<Vec<MachineView>>;

    /// Predicted probability that `machine` stays available over the
    /// next `window` seconds.
    fn survival(&mut self, machine: u32, window: u64) -> io::Result<f64>;
}

/// The production source: per-machine stats and availability queries
/// routed through the sharded cluster router.
#[cfg(target_os = "linux")]
pub struct ClusterSource {
    client: fgcs_service::ClusterClient,
}

#[cfg(target_os = "linux")]
impl ClusterSource {
    /// Wraps an already-connected router.
    pub fn new(client: fgcs_service::ClusterClient) -> ClusterSource {
        ClusterSource { client }
    }

    /// The wrapped router (e.g. to read its fault metrics).
    pub fn client_mut(&mut self) -> &mut fgcs_service::ClusterClient {
        &mut self.client
    }
}

#[cfg(target_os = "linux")]
impl AvailabilitySource for ClusterSource {
    fn machines(&mut self) -> io::Result<Vec<MachineView>> {
        let mut views = Vec::new();
        for s in 0..self.client.shard_count() {
            let stats = self.client.stats_of(s)?;
            views.extend(stats.machines.iter().map(|m| MachineView {
                machine: m.machine,
                harvestable: m.harvestable,
                occurrences: m.occurrences,
            }));
        }
        views.sort_by_key(|v| v.machine);
        Ok(views)
    }

    fn survival(&mut self, machine: u32, window: u64) -> io::Result<f64> {
        match self.client.query_avail(machine, window)? {
            fgcs_wire::Frame::AvailReply { prob, .. } => Ok(prob),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply to QueryAvail: {other:?}"),
            )),
        }
    }
}
