//! The `fgcs-sched` service: a thin wire API over the scheduler loop.
//!
//! Two threads: an accept loop answering the `Frame::Sched*` vocabulary
//! (thread-per-connection, same framing as the availability service),
//! and a tick loop that polls the [`AvailabilitySource`] and drives the
//! scheduler — revocations first (any occupied host that stopped being
//! harvestable kills its guest), then progress accrual, then the SLO
//! migration sweep, then placement of the queue.
//!
//! The scheduler clock is *logical*: every tick advances it by
//! [`SchedServeConfig::tick_secs`] guest-seconds, decoupling test/demo
//! pacing from wall time (a demo can run a simulated hour per wall
//! second). Submissions and queries serialize against the tick loop on
//! one mutex — the scheduler state is small, and ticks are dominated by
//! source round trips taken *outside* the lock where possible.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fgcs_wire::{Decoder, ErrorCode, Frame};

use crate::sched::{JobState, SchedConfig, Scheduler, SubmitError};
use crate::source::AvailabilitySource;

/// Service-level configuration (scheduler tuning lives in
/// [`SchedConfig`]).
#[derive(Debug, Clone)]
pub struct SchedServeConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Wall-clock tick period.
    pub tick_ms: u64,
    /// Guest-seconds the logical clock advances per tick.
    pub tick_secs: u64,
    /// Auto-register unknown submitting users with this base quota
    /// (0 = strict: unknown users are refused).
    pub default_base: u64,
}

impl Default for SchedServeConfig {
    fn default() -> SchedServeConfig {
        SchedServeConfig {
            addr: "127.0.0.1:0".to_string(),
            tick_ms: 100,
            tick_secs: 60,
            default_base: 0,
        }
    }
}

struct Inner {
    sched: Mutex<Clock>,
    shutdown: AtomicBool,
    default_base: u64,
}

struct Clock {
    sched: Scheduler,
    now: u64,
}

/// A running scheduler service. Dropping without [`SchedServer::shutdown`]
/// leaks the threads; tests and the binary always shut down.
pub struct SchedServer {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    tick: Option<std::thread::JoinHandle<()>>,
}

impl SchedServer {
    /// Binds `cfg.addr`, registers `users` as `(id, base quota)`, and
    /// starts the accept + tick threads over `source`.
    pub fn start<S>(
        cfg: SchedServeConfig,
        sched_cfg: SchedConfig,
        users: &[(u32, u64)],
        source: S,
    ) -> io::Result<SchedServer>
    where
        S: AvailabilitySource + Send + 'static,
    {
        let mut sched = Scheduler::new(sched_cfg);
        for &(user, base) in users {
            sched.add_user(user, base);
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            sched: Mutex::new(Clock { sched, now: 0 }),
            shutdown: AtomicBool::new(false),
            default_base: cfg.default_base,
        });

        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(listener, inner))
        };
        let tick = {
            let inner = Arc::clone(&inner);
            let tick_ms = cfg.tick_ms.max(1);
            let tick_secs = cfg.tick_secs.max(1);
            std::thread::spawn(move || tick_loop(inner, source, tick_ms, tick_secs))
        };
        Ok(SchedServer {
            inner,
            local_addr,
            accept: Some(accept),
            tick: Some(tick),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current scheduler counters.
    pub fn stats(&self) -> fgcs_wire::SchedStatsPayload {
        self.inner.sched.lock().unwrap().sched.stats()
    }

    /// Stops both threads and joins them.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.tick.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || {
            let _ = serve_connection(stream, &inner);
        });
    }
}

fn tick_loop<S: AvailabilitySource>(
    inner: Arc<Inner>,
    mut source: S,
    tick_ms: u64,
    tick_secs: u64,
) {
    while !inner.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(tick_ms));
        // Pull the machine views before taking the lock: over the
        // cluster this is one stats round trip per shard.
        let views = match source.machines() {
            Ok(v) => v,
            Err(_) => continue, // cluster briefly unreachable: skip the tick
        };
        let mut clock = inner.sched.lock().unwrap();
        clock.now += tick_secs;
        let now = clock.now;
        // Revocations: the service reported a transition out of the
        // available states under a guest (or the machine vanished).
        for (machine, _) in clock.sched.hosts() {
            let gone = !views.iter().any(|v| v.machine == machine && v.harvestable);
            if gone {
                clock.sched.on_unavailable(machine, now);
            }
        }
        clock.sched.advance(now);
        clock
            .sched
            .check_migrations(now, &mut |m, w| source.survival(m, w).unwrap_or(1.0));
        clock.sched.place(now, &views, &mut |m, w| {
            source.survival(m, w).unwrap_or(1.0)
        });
    }
}

fn serve_connection(mut stream: TcpStream, inner: &Arc<Inner>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut dec = Decoder::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()),
            Ok(n) => dec.push(&buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => {
                    let reply = handle(&frame, inner);
                    let bytes = reply.encode().map_err(io::Error::other)?;
                    stream.write_all(&bytes)?;
                }
                Ok(None) => break,
                Err(e) if e.is_fatal() => return Ok(()),
                Err(_) => {
                    let reply = Frame::Error {
                        code: ErrorCode::BadFrame,
                        detail: "undecodable frame".to_string(),
                    };
                    stream.write_all(&reply.encode().map_err(io::Error::other)?)?;
                }
            }
        }
    }
}

fn job_reply(sched: &Scheduler, id: u64) -> Frame {
    let job = sched.job(id).expect("caller checked the id");
    Frame::SchedJobReply {
        id: job.id,
        user: job.user,
        state: job.state.code(),
        machine: match job.state {
            JobState::Running { machine, .. } => Some(machine),
            _ => None,
        },
        done: job.done,
        work: job.work,
        evictions: job.evictions,
        migrations: job.migrations,
    }
}

fn handle(frame: &Frame, inner: &Arc<Inner>) -> Frame {
    match frame {
        Frame::SchedSubmit { user, work } => {
            let mut clock = inner.sched.lock().unwrap();
            if !clock.sched.has_user(*user) && inner.default_base > 0 {
                clock.sched.add_user(*user, inner.default_base);
            }
            let now = clock.now;
            match clock.sched.submit(*user, *work, now) {
                Ok(id) => job_reply(&clock.sched, id),
                Err(SubmitError::QuotaExceeded) => Frame::Error {
                    code: ErrorCode::QuotaExceeded,
                    detail: format!("user {user} backlog at quota cap"),
                },
                Err(SubmitError::UnknownUser) => Frame::Error {
                    code: ErrorCode::QuotaExceeded,
                    detail: format!("user {user} not registered (zero allowance)"),
                },
            }
        }
        Frame::SchedQueryJob { id } => {
            let clock = inner.sched.lock().unwrap();
            match clock.sched.job(*id) {
                Some(_) => job_reply(&clock.sched, *id),
                None => Frame::Error {
                    code: ErrorCode::UnknownJob,
                    detail: format!("job {id}"),
                },
            }
        }
        Frame::SchedShare { user, op, amount } => {
            let mut clock = inner.sched.lock().unwrap();
            if !clock.sched.has_user(*user) && inner.default_base > 0 {
                clock.sched.add_user(*user, inner.default_base);
            }
            match op {
                1 => {
                    clock.sched.share_request(*user, *amount);
                }
                2 => {
                    clock.sched.share_release(*user, *amount);
                }
                _ => {}
            }
            let st = clock.sched.share_status(*user);
            Frame::SchedShareReply {
                user: *user,
                base: st.base,
                extra: st.extra,
                in_use: st.in_use,
                pool_free: st.pool_free,
            }
        }
        Frame::SchedQueryStats => {
            let clock = inner.sched.lock().unwrap();
            Frame::SchedStatsReply(clock.sched.stats())
        }
        other => Frame::Error {
            code: ErrorCode::Unsupported,
            detail: format!("scheduler cannot answer tag {}", other.tag()),
        },
    }
}
