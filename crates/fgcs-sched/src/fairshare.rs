//! Per-user fairshare quota accounting.
//!
//! Modeled on the request/release/status discipline of lab fairshare
//! tools: every user owns a `base` number of concurrent guest slots
//! outright, and a shared pool of `extra` slots can be borrowed on top.
//! Dispatch acquires one slot per running guest and yields it when the
//! guest completes, is evicted, or migrates.
//!
//! Invariants (checked by `debug_assert!` on every mutation and pinned
//! by the unit tests):
//!
//! 1. **Pool conservation**: `pool_free + Σ granted extra` equals the
//!    configured pool size at all times.
//! 2. **Allowance ceiling**: each user's `in_use <= base + extra`.
//!    [`Fairshare::try_acquire`] is the *only* way to raise `in_use`,
//!    and it refuses at the ceiling — so a scheduler bug shows up as a
//!    refused dispatch, never as an over-quota guest.
//! 3. **No in-use release**: extra slots still backing running guests
//!    cannot be returned to the pool; [`Fairshare::release`] caps the
//!    return at what the user's current usage allows.

use std::collections::BTreeMap;

/// One user's ledger row, as reported over the wire
/// (`Frame::SchedShareReply`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShareStatus {
    /// Base quota: concurrent running-guest slots owned outright.
    pub base: u64,
    /// Extra slots currently borrowed from the shared pool.
    pub extra: u64,
    /// Slots currently backing running guests.
    pub in_use: u64,
    /// Slots left in the shared pool.
    pub pool_free: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct UserRow {
    base: u64,
    extra: u64,
    in_use: u64,
}

/// The fairshare ledger: per-user base quotas plus a shared extra pool.
#[derive(Debug, Clone, Default)]
pub struct Fairshare {
    pool_size: u64,
    pool_free: u64,
    users: BTreeMap<u32, UserRow>,
}

impl Fairshare {
    /// Creates a ledger with `pool` borrowable extra slots and no users.
    pub fn new(pool: u64) -> Fairshare {
        Fairshare {
            pool_size: pool,
            pool_free: pool,
            users: BTreeMap::new(),
        }
    }

    /// Registers `user` with `base` owned slots (idempotent; a repeat
    /// call updates the base but never disturbs borrowed extra).
    pub fn add_user(&mut self, user: u32, base: u64) {
        self.users.entry(user).or_default().base = base;
        self.check();
    }

    /// Whether `user` is registered.
    pub fn has_user(&self, user: u32) -> bool {
        self.users.contains_key(&user)
    }

    /// Registered user ids.
    pub fn users(&self) -> Vec<u32> {
        self.users.keys().copied().collect()
    }

    /// Requests up to `n` extra slots from the pool for `user`; returns
    /// how many were actually granted (the pool may run dry first).
    pub fn request(&mut self, user: u32, n: u64) -> u64 {
        let granted = n.min(self.pool_free);
        self.users.entry(user).or_default().extra += granted;
        self.pool_free -= granted;
        self.check();
        granted
    }

    /// Returns up to `n` of `user`'s extra slots to the pool; returns
    /// how many actually went back. Slots still backing running guests
    /// are not returnable: the user keeps enough allowance to cover
    /// `in_use`.
    pub fn release(&mut self, user: u32, n: u64) -> u64 {
        let row = self.users.entry(user).or_default();
        let pinned = row.in_use.saturating_sub(row.base);
        let returnable = row.extra.saturating_sub(pinned);
        let returned = n.min(returnable);
        row.extra -= returned;
        self.pool_free += returned;
        self.check();
        returned
    }

    /// The user's current allowance: `base + extra`.
    pub fn allowance(&self, user: u32) -> u64 {
        self.users.get(&user).map_or(0, |r| r.base + r.extra)
    }

    /// Acquires one running-guest slot for `user`. Refuses (returns
    /// `false`) at the allowance ceiling — this is the quota gate.
    pub fn try_acquire(&mut self, user: u32) -> bool {
        let row = self.users.entry(user).or_default();
        if row.in_use >= row.base + row.extra {
            return false;
        }
        row.in_use += 1;
        self.check();
        true
    }

    /// Yields one running-guest slot back (guest completed, evicted,
    /// or migrated off its host).
    pub fn yield_slot(&mut self, user: u32) {
        let row = self.users.entry(user).or_default();
        debug_assert!(row.in_use > 0, "yield without acquire for user {user}");
        row.in_use = row.in_use.saturating_sub(1);
        self.check();
    }

    /// The user's ledger row plus the current pool headroom.
    pub fn status(&self, user: u32) -> ShareStatus {
        let row = self.users.get(&user).copied().unwrap_or_default();
        ShareStatus {
            base: row.base,
            extra: row.extra,
            in_use: row.in_use,
            pool_free: self.pool_free,
        }
    }

    fn check(&self) {
        debug_assert_eq!(
            self.pool_free + self.users.values().map(|r| r.extra).sum::<u64>(),
            self.pool_size,
            "extra-pool conservation violated"
        );
        for (u, r) in &self.users {
            debug_assert!(
                r.in_use <= r.base + r.extra,
                "user {u} over allowance: {} > {} + {}",
                r.in_use,
                r.base,
                r.extra
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_conserved_across_request_release() {
        let mut fs = Fairshare::new(3);
        fs.add_user(1, 2);
        fs.add_user(2, 1);
        assert_eq!(fs.request(1, 2), 2);
        assert_eq!(fs.request(2, 5), 1, "pool runs dry");
        assert_eq!(fs.status(1).pool_free, 0);
        assert_eq!(fs.release(1, 10), 2, "only what was borrowed returns");
        assert_eq!(fs.release(2, 1), 1);
        assert_eq!(fs.status(1).pool_free, 3);
    }

    #[test]
    fn acquire_refuses_at_the_allowance_ceiling() {
        let mut fs = Fairshare::new(2);
        fs.add_user(7, 1);
        assert!(fs.try_acquire(7));
        assert!(!fs.try_acquire(7), "base exhausted");
        assert_eq!(fs.request(7, 1), 1);
        assert!(fs.try_acquire(7), "extra raises the ceiling");
        assert!(!fs.try_acquire(7));
        fs.yield_slot(7);
        assert!(fs.try_acquire(7));
    }

    #[test]
    fn in_use_extra_slots_cannot_be_released() {
        let mut fs = Fairshare::new(2);
        fs.add_user(3, 1);
        fs.request(3, 2);
        assert!(fs.try_acquire(3));
        assert!(fs.try_acquire(3));
        assert!(fs.try_acquire(3)); // base 1 + extra 2, all running
        assert_eq!(fs.release(3, 2), 0, "all extra is pinned under guests");
        fs.yield_slot(3);
        assert_eq!(fs.release(3, 2), 1, "one slot freed, one still pinned");
        fs.yield_slot(3);
        fs.yield_slot(3);
        assert_eq!(fs.release(3, 2), 1);
        assert_eq!(fs.status(3).pool_free, 2);
    }

    #[test]
    fn unknown_users_have_zero_allowance() {
        let mut fs = Fairshare::new(1);
        assert_eq!(fs.allowance(9), 0);
        assert!(!fs.try_acquire(9));
        assert_eq!(fs.status(9).base, 0);
    }
}
