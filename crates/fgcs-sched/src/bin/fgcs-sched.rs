//! `fgcs-sched`: run the guest scheduler against an availability
//! cluster from the command line.
//!
//! ```text
//! fgcs-sched --shard NAME=PRIMARY[,FOLLOWER] [--shard ...]
//!            [--addr HOST:PORT] [--policy random|greedy|predictive]
//!            [--user ID:BASE] [--pool N] [--default-base N]
//!            [--tick-ms MS] [--tick-secs S]
//! ```
//!
//! Prints `listening on ADDR` once bound (port 0 picks a free port),
//! then serves the `Sched*` wire vocabulary until stdin reaches EOF —
//! the same lifecycle contract as `fgcs-serve`, so the two compose in
//! scripts (see the README quickstart).

#[cfg(target_os = "linux")]
fn main() {
    linux::main()
}

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("fgcs-sched: the cluster router needs Linux (epoll); no scheduler on this OS");
    std::process::exit(2);
}

#[cfg(target_os = "linux")]
mod linux {
    use std::io::Read;
    use std::process::exit;

    use fgcs_sched::{ClusterSource, Policy, SchedConfig, SchedServeConfig, SchedServer};
    use fgcs_service::{ClusterClient, ClusterConfig, ShardSpec};

    fn usage() -> ! {
        eprintln!(
            "usage: fgcs-sched --shard NAME=PRIMARY[,FOLLOWER] [--shard ...]\n\
             \x20                 [--addr HOST:PORT] [--policy random|greedy|predictive]\n\
             \x20                 [--user ID:BASE] [--pool N] [--default-base N]\n\
             \x20                 [--tick-ms MS] [--tick-secs S]\n\
             \n\
             Schedules guest jobs over the availability cluster: --shard names\n\
             each availability-service shard (primary address, optional\n\
             follower). --user registers a fairshare base quota per user id;\n\
             --pool sizes the borrowable extra pool; --default-base\n\
             auto-registers unknown submitters. Runs until stdin reaches EOF;\n\
             prints `listening on ADDR` once bound."
        );
        exit(2);
    }

    fn parse_shard(spec: &str) -> Option<ShardSpec> {
        let (name, rest) = spec.split_once('=')?;
        let (primary, follower) = match rest.split_once(',') {
            Some((p, f)) => (p, Some(f.to_string())),
            None => (rest, None),
        };
        if name.is_empty() || primary.is_empty() {
            return None;
        }
        Some(ShardSpec {
            name: name.to_string(),
            primary_addr: primary.to_string(),
            follower_addr: follower,
        })
    }

    pub fn main() {
        let mut serve_cfg = SchedServeConfig {
            default_base: 1,
            ..SchedServeConfig::default()
        };
        let mut sched_cfg = SchedConfig::default();
        let mut shards: Vec<ShardSpec> = Vec::new();
        let mut users: Vec<(u32, u64)> = Vec::new();

        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| -> String {
                args.next().unwrap_or_else(|| {
                    eprintln!("fgcs-sched: {name} needs a value");
                    usage()
                })
            };
            match arg.as_str() {
                "--addr" => serve_cfg.addr = value("--addr"),
                "--shard" => match parse_shard(&value("--shard")) {
                    Some(s) => shards.push(s),
                    None => {
                        eprintln!("fgcs-sched: --shard wants NAME=PRIMARY[,FOLLOWER]");
                        usage()
                    }
                },
                "--policy" => match Policy::parse(&value("--policy")) {
                    Some(p) => sched_cfg.policy = p,
                    None => {
                        eprintln!("fgcs-sched: --policy must be random, greedy, or predictive");
                        usage()
                    }
                },
                "--user" => {
                    let v = value("--user");
                    let parsed = v.split_once(':').and_then(|(id, base)| {
                        Some((id.parse::<u32>().ok()?, base.parse::<u64>().ok()?))
                    });
                    match parsed {
                        Some(u) => users.push(u),
                        None => {
                            eprintln!("fgcs-sched: --user wants ID:BASE");
                            usage()
                        }
                    }
                }
                "--pool" => match value("--pool").parse() {
                    Ok(n) => sched_cfg.pool_extra = n,
                    Err(_) => usage(),
                },
                "--default-base" => match value("--default-base").parse() {
                    Ok(n) => serve_cfg.default_base = n,
                    Err(_) => usage(),
                },
                "--tick-ms" => match value("--tick-ms").parse() {
                    Ok(n) => serve_cfg.tick_ms = n,
                    Err(_) => usage(),
                },
                "--tick-secs" => match value("--tick-secs").parse() {
                    Ok(n) => serve_cfg.tick_secs = n,
                    Err(_) => usage(),
                },
                "--help" | "-h" => usage(),
                other => {
                    eprintln!("fgcs-sched: unknown argument {other}");
                    usage()
                }
            }
        }
        if shards.is_empty() {
            eprintln!("fgcs-sched: at least one --shard is required");
            usage()
        }

        let client = match ClusterClient::connect(ClusterConfig::new(shards)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("fgcs-sched: cluster setup failed: {e}");
                exit(1);
            }
        };
        let source = ClusterSource::new(client);
        let server = match SchedServer::start(serve_cfg, sched_cfg, &users, source) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fgcs-sched: bind failed: {e}");
                exit(1);
            }
        };
        println!("listening on {}", server.local_addr());

        // Lifecycle contract shared with fgcs-serve: run until stdin
        // reaches EOF, then shut down cleanly.
        let mut sink = [0u8; 4096];
        let mut stdin = std::io::stdin();
        while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
        server.shutdown();
    }
}
