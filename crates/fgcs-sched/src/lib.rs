//! Prediction-driven guest scheduling over the availability cluster.
//!
//! The paper's thesis is that multi-state availability *prediction*
//! should drive guest-job placement in a fine-grained cycle-sharing
//! system. The rest of the stack produces those predictions — the
//! detector and testbed (`fgcs-core`, `fgcs-testbed`), the predictors
//! (`fgcs-predict`), and the replicated availability service with its
//! cluster router (`fgcs-service`). This crate closes the loop: a
//! scheduler that consumes availability predictions and placement
//! stats from the cluster and decides *where guest jobs actually run*.
//!
//! Three concerns, three modules:
//!
//! - [`fairshare`]: per-user quota accounting. Every user owns `base`
//!   concurrent guest slots and can request/release *extra* slots from
//!   a shared pool; admission control and dispatch are gated on the
//!   resulting allowance. Invariants are documented on
//!   [`fairshare::Fairshare`] and asserted in tests.
//! - [`policy`] + [`sched`]: placement and the job lifecycle. The
//!   prediction-driven policy ranks harvestable machines by predicted
//!   time-to-unavailability for the job's *remaining* runtime
//!   (`fgcs_predict::time_to_failure`); random and predictionless
//!   greedy baselines share the same dispatch path, so experiment
//!   comparisons are paired. Guests checkpoint periodically; a host
//!   revocation (the `fgcs-sim`/`fgcs-testbed` semantics: the guest is
//!   killed where it stands) loses exactly the un-checkpointed
//!   progress, while an SLO-driven migration
//!   (`fgcs_predict::MigrationTrigger`) banks progress first and pays
//!   a fixed re-placement cost.
//! - [`serve`] + [`source`]: the service surface. A thin wire API
//!   (`Frame::Sched*`, DESIGN.md §9 tags 20–26) over a scheduler loop
//!   that polls an [`source::AvailabilitySource`] — in production the
//!   cluster router ([`source::ClusterSource`]), in tests anything.
//!
//! DESIGN.md §14 describes the placement policy, the fairshare
//! invariants, and the migration state machine; experiment X14
//! (`fgcs-experiments`, `results/sched_eval.csv`) evaluates the three
//! policies against each other over replayed testbed traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fairshare;
pub mod policy;
pub mod sched;
pub mod serve;
pub mod source;

pub use fairshare::{Fairshare, ShareStatus};
pub use policy::Policy;
pub use sched::{Job, JobState, SchedConfig, Scheduler};
pub use serve::{SchedServeConfig, SchedServer};
#[cfg(target_os = "linux")]
pub use source::ClusterSource;
pub use source::{AvailabilitySource, MachineView};
