//! Discrete-time machine simulator for fine-grained cycle sharing.
//!
//! The ICPP'06 FGCS paper ran its contention experiments on real RedHat
//! Linux and Solaris machines. This crate is the substitute substrate: a
//! 100 Hz discrete-time simulation of a Unix time-sharing machine with
//!
//! * a process model covering the paper's workload shapes
//!   ([`proc::Demand`]),
//! * a faithful Linux-2.4-style "goodness" scheduler whose quantum
//!   mechanics make the paper's two contention thresholds *emerge*
//!   ([`machine`]),
//! * a physical-memory model with thrashing ([`machine::Machine`]'s
//!   efficiency curve), and
//! * the paper's workload catalog: synthetic duty-cycle hosts, the four
//!   SPEC CPU2000 guests and the six Musbus host workloads of Table 1
//!   ([`workloads`]).
//!
//! # Quick example
//!
//! ```
//! use fgcs_sim::machine::Machine;
//! use fgcs_sim::proc::ProcSpec;
//! use fgcs_sim::time::secs;
//!
//! let mut m = Machine::default_linux();
//! m.spawn(ProcSpec::synthetic_host("editor", 0.2, 40));
//! m.spawn(ProcSpec::cpu_bound_guest("seti", 19));
//! let usage = m.measure(secs(60));
//! assert!(usage.host_load() > 0.15); // the guest barely disturbs the host
//! assert!(usage.guest_load() > 0.5); // while harvesting most idle cycles
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod proc;
pub mod time;
pub mod workloads;

pub use machine::{CpuAccounting, Machine, MachineConfig, SimError};
pub use proc::{Demand, MemSpec, Phase, Pid, ProcClass, ProcSpec, Process, RunState};
