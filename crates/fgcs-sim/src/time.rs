//! Simulated time.
//!
//! The simulator runs at a fixed 100 Hz timer, the `HZ` of the Linux 2.4
//! kernels on the paper's RedHat testbed: one tick is 10 ms, and the
//! scheduler makes one decision per tick. All simulator durations are
//! expressed in ticks.

/// One scheduler tick in milliseconds (100 Hz timer).
pub const TICK_MS: u64 = 10;

/// Ticks per second.
pub const TICKS_PER_SEC: u64 = 1000 / TICK_MS;

/// Ticks per minute.
pub const TICKS_PER_MIN: u64 = 60 * TICKS_PER_SEC;

/// A point in simulated time, measured in ticks since machine boot.
pub type Tick = u64;

/// Converts whole seconds to ticks.
#[inline]
pub const fn secs(s: u64) -> u64 {
    s * TICKS_PER_SEC
}

/// Converts milliseconds to ticks, rounding down (minimum 0).
#[inline]
pub const fn millis(ms: u64) -> u64 {
    ms / TICK_MS
}

/// Converts minutes to ticks.
#[inline]
pub const fn minutes(m: u64) -> u64 {
    m * TICKS_PER_MIN
}

/// Converts ticks to fractional seconds.
#[inline]
pub fn to_secs(ticks: u64) -> f64 {
    ticks as f64 / TICKS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(secs(1), 100);
        assert_eq!(millis(10), 1);
        assert_eq!(millis(9), 0);
        assert_eq!(minutes(1), 6000);
        assert_eq!(to_secs(secs(42)), 42.0);
    }
}
