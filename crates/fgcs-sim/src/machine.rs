//! A simulated time-sharing machine.
//!
//! [`Machine`] combines the process table, a Linux-2.4-style "goodness"
//! scheduler, and a physical-memory model with thrashing. It exposes the
//! control surface the FGCS middleware uses (`spawn`, `kill`, `renice`,
//! `suspend`, `resume`) and the observables a non-intrusive monitor can
//! read (`vmstat`-style cumulative CPU accounting and free memory).
//!
//! # The scheduler
//!
//! One decision per 10 ms tick (HZ = 100). Every process has a quantum
//! `counter`; the runnable process with the largest *goodness*
//! `counter + (20 − nice)` runs for the tick (goodness 0 when the counter
//! is exhausted). When every runnable process has exhausted its counter,
//! quanta are recalculated for **all** processes —
//! `counter = counter/2 + nice_to_ticks(nice)` — so a process that slept
//! through recalculations banks up to twice its quantum. That bank is the
//! interactivity bonus: it lets a low-duty host process preempt a
//! CPU-bound guest outright, and its size relative to the host's burst
//! length is what produces the paper's Th1/Th2 thresholds.
//!
//! Ties prefer the currently running process (avoiding gratuitous
//! context switches), then the lowest pid.
//!
//! # The memory model
//!
//! Resident sets of all non-suspended, non-exited processes plus a fixed
//! kernel share compete for physical memory. While their sum exceeds
//! physical memory, the machine thrashes: after every executed CPU tick
//! the whole machine stalls on page-fault I/O for
//! `(1 − eff)/eff` ticks, where `eff = (phys/total)^thrash_exponent` —
//! the disk, not the CPU, is the bottleneck, so those ticks are *iowait*,
//! consuming wall time without charging any process. Measured CPU usage
//! of every process collapses by the same factor, which reproduces the
//! §3.2.3 observation that thrashing drags the host down *regardless of
//! CPU priorities* (the starred bars of Figure 4).

use crate::proc::{nice_to_ticks, Pid, ProcClass, ProcSpec, Process, RunState};
use crate::time::Tick;

/// Machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Name used in reports.
    pub name: String,
    /// Physical memory in MB.
    pub phys_mem_mb: u32,
    /// Memory reserved by the kernel, in MB (the paper estimates
    /// "kernel memory usage of about 100 MB" on the Solaris machine).
    pub kernel_mem_mb: u32,
    /// Exponent of the thrashing-efficiency curve; larger is a steeper
    /// collapse. 1.5 reproduces the 20–35% host-CPU reductions of
    /// Figure 4's starred bars.
    pub thrash_exponent: f64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        // The Linux testbed machines: "the physical memory size is larger
        // than 1 GB on all the tested machines" (§5.1).
        MachineConfig {
            name: "linux-1.7ghz".to_string(),
            phys_mem_mb: 1024,
            kernel_mem_mb: 100,
            thrash_exponent: 1.5,
        }
    }
}

impl MachineConfig {
    /// The 300 MHz / 384 MB Solaris machine of §3.2.3.
    pub fn solaris_384mb() -> Self {
        MachineConfig {
            name: "solaris-300mhz".to_string(),
            phys_mem_mb: 384,
            kernel_mem_mb: 100,
            thrash_exponent: 1.5,
        }
    }
}

/// Errors from machine control calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The pid does not exist on this machine.
    NoSuchProcess(Pid),
    /// The pid exists but has exited.
    ProcessExited(Pid),
    /// Nice value outside −20..=19.
    BadNice(i8),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoSuchProcess(p) => write!(f, "no such process: {p}"),
            SimError::ProcessExited(p) => write!(f, "process has exited: {p}"),
            SimError::BadNice(n) => write!(f, "nice value out of range: {n}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Cumulative CPU accounting, in ticks since boot. Snapshot-and-diff two
/// of these to get utilization over a window, exactly as `vmstat` does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuAccounting {
    /// Ticks consumed by host-class processes.
    pub host: u64,
    /// Ticks consumed by system daemons (host load from the guest's view).
    pub system: u64,
    /// Ticks consumed by guest processes.
    pub guest: u64,
    /// Idle ticks.
    pub idle: u64,
    /// Ticks the machine spent stalled on page-fault I/O (thrashing).
    pub iowait: u64,
}

impl CpuAccounting {
    /// Total ticks covered.
    pub fn total(&self) -> u64 {
        self.host + self.system + self.guest + self.idle + self.iowait
    }

    /// Component-wise difference `self - earlier`.
    pub fn since(&self, earlier: &CpuAccounting) -> CpuAccounting {
        CpuAccounting {
            host: self.host - earlier.host,
            system: self.system - earlier.system,
            guest: self.guest - earlier.guest,
            idle: self.idle - earlier.idle,
            iowait: self.iowait - earlier.iowait,
        }
    }

    /// Host CPU utilization (host + system) over this accounting span;
    /// 0 for an empty span.
    pub fn host_load(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.host + self.system) as f64 / t as f64
        }
    }

    /// Guest CPU utilization over this accounting span.
    pub fn guest_load(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.guest as f64 / t as f64
        }
    }
}

/// A simulated machine.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    now: Tick,
    procs: Vec<Process>,
    current: Option<usize>,
    acct: CpuAccounting,
    recalcs: u64,
    /// While `now < iowait_until`, the machine is stalled on page faults.
    iowait_until: Tick,
    /// Fractional page-fault stall owed but not yet long enough for a
    /// whole tick; keeps sub-tick stalls (mild overcommit) from being
    /// rounded away.
    stall_debt: f64,
    /// Optional scheduling-decision log: (tick, pid) per executed tick.
    run_log: Option<Vec<(Tick, Pid)>>,
    /// Cached sum of resident sets of all memory-occupying processes, in
    /// MB (excludes the kernel share). Maintained incrementally at every
    /// process state transition so `memory_efficiency` is O(1).
    resident_all_mb: u32,
    /// Cached resident sum of memory-occupying host+system processes.
    resident_host_mb: u32,
    /// Cached number of runnable processes.
    runnable_count: usize,
    /// Whether the FGCS service daemon on this machine still responds.
    /// Cleared by [`Machine::revoke`] (resource revocation / service
    /// death, the paper's S5) and restored by
    /// [`Machine::restore_service`]; the host itself keeps running.
    service_up: bool,
    /// Cached minimum `remaining` over sleeping processes (`None` when
    /// nobody sleeps) — the next-wake horizon for the batched fast path.
    /// Stored relative, not as an absolute wake tick: iowait stalls
    /// freeze sleep timers while `now` advances, and a relative horizon
    /// survives those batches unchanged. Only meaningful while
    /// `sleep_min_valid`; control calls that touch a sleeper invalidate
    /// it and the next scheduling scan recomputes it for free.
    sleep_min: Option<u64>,
    /// Whether `sleep_min` reflects the process table.
    sleep_min_valid: bool,
}

impl Machine {
    /// Boots an empty machine.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            cfg,
            now: 0,
            procs: Vec::new(),
            current: None,
            acct: CpuAccounting::default(),
            recalcs: 0,
            iowait_until: 0,
            stall_debt: 0.0,
            run_log: None,
            service_up: true,
            resident_all_mb: 0,
            resident_host_mb: 0,
            runnable_count: 0,
            sleep_min: None,
            sleep_min_valid: true,
        }
    }

    /// Boots a machine with the default (Linux testbed) configuration.
    pub fn default_linux() -> Self {
        Machine::new(MachineConfig::default())
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time in ticks since boot.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Number of quantum recalculations so far (diagnostic).
    pub fn recalc_count(&self) -> u64 {
        self.recalcs
    }

    /// Starts recording one `(tick, pid)` entry per executed tick.
    /// Diagnostic aid for scheduler tests; keeps every entry, so enable
    /// only for short runs.
    pub fn enable_run_log(&mut self) {
        self.run_log = Some(Vec::new());
    }

    /// The recorded scheduling decisions, if logging is enabled.
    pub fn run_log(&self) -> &[(Tick, Pid)] {
        self.run_log.as_deref().unwrap_or(&[])
    }

    /// Spawns a process, returning its pid.
    pub fn spawn(&mut self, spec: ProcSpec) -> Pid {
        let pid = Pid(self.procs.len() as u32);
        let p = Process::spawn(pid, spec, self.now);
        if p.occupies_memory() {
            self.resident_all_mb += p.spec.mem.resident_mb;
            if p.spec.class.counts_as_host() {
                self.resident_host_mb += p.spec.mem.resident_mb;
            }
        }
        if p.is_runnable() {
            self.runnable_count += 1;
        }
        if let RunState::Sleeping { remaining } = p.state {
            // A spawn can begin asleep (phase list with zero leading
            // work); fold it into the wake horizon directly.
            self.sleep_min = Some(match self.sleep_min {
                Some(m) => m.min(remaining),
                None => remaining,
            });
        }
        self.procs.push(p);
        pid
    }

    /// Applies `f` to process `i` and reconciles the cached aggregates
    /// with whatever state transition it caused. Class and resident size
    /// never change after spawn, so diffing `(occupies_memory,
    /// is_runnable)` captures every transition that matters; the sleep
    /// horizon is invalidated whenever a sleeper is involved and
    /// recomputed by the next scheduling scan.
    fn mutate_proc(&mut self, i: usize, f: impl FnOnce(&mut Process)) {
        let was_occupying = self.procs[i].occupies_memory();
        let was_runnable = self.procs[i].is_runnable();
        let sleep_before = matches!(self.procs[i].state, RunState::Sleeping { .. });
        f(&mut self.procs[i]);
        self.reconcile_aggregates(i, was_occupying, was_runnable);
        if sleep_before || matches!(self.procs[i].state, RunState::Sleeping { .. }) {
            self.sleep_min_valid = false;
        }
    }

    /// Adjusts the cached aggregates after process `i` changed state.
    fn reconcile_aggregates(&mut self, i: usize, was_occupying: bool, was_runnable: bool) {
        let p = &self.procs[i];
        if p.occupies_memory() != was_occupying {
            let mb = p.spec.mem.resident_mb;
            if was_occupying {
                self.resident_all_mb -= mb;
                if p.spec.class.counts_as_host() {
                    self.resident_host_mb -= mb;
                }
            } else {
                self.resident_all_mb += mb;
                if p.spec.class.counts_as_host() {
                    self.resident_host_mb += mb;
                }
            }
        }
        if p.is_runnable() != was_runnable {
            if was_runnable {
                self.runnable_count -= 1;
            } else {
                self.runnable_count += 1;
            }
        }
    }

    /// Recomputes every cached aggregate from the process table and
    /// panics on any mismatch. Debug-build insurance that the
    /// incremental bookkeeping never drifts from the ground truth.
    #[cfg(debug_assertions)]
    fn assert_aggregates(&self) {
        let all: u32 = self
            .procs
            .iter()
            .filter(|p| p.occupies_memory())
            .map(|p| p.spec.mem.resident_mb)
            .sum();
        let host: u32 = self
            .procs
            .iter()
            .filter(|p| p.occupies_memory() && p.spec.class.counts_as_host())
            .map(|p| p.spec.mem.resident_mb)
            .sum();
        let runnable = self.procs.iter().filter(|p| p.is_runnable()).count();
        assert_eq!(self.resident_all_mb, all, "resident aggregate drifted");
        assert_eq!(
            self.resident_host_mb, host,
            "host resident aggregate drifted"
        );
        assert_eq!(self.runnable_count, runnable, "runnable count drifted");
        if self.sleep_min_valid {
            let min = self
                .procs
                .iter()
                .filter_map(|p| match p.state {
                    RunState::Sleeping { remaining } => Some(remaining),
                    _ => None,
                })
                .min();
            assert_eq!(self.sleep_min, min, "sleep horizon drifted");
        }
    }

    fn index(&self, pid: Pid) -> Result<usize, SimError> {
        let i = pid.0 as usize;
        if i < self.procs.len() {
            Ok(i)
        } else {
            Err(SimError::NoSuchProcess(pid))
        }
    }

    fn live_index(&self, pid: Pid) -> Result<usize, SimError> {
        let i = self.index(pid)?;
        if self.procs[i].is_exited() {
            Err(SimError::ProcessExited(pid))
        } else {
            Ok(i)
        }
    }

    /// Read access to a process.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(pid.0 as usize)
    }

    /// Iterates all processes ever spawned (including exited ones).
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.procs.iter()
    }

    /// Terminates a process (SIGKILL).
    pub fn kill(&mut self, pid: Pid) -> Result<(), SimError> {
        let i = self.live_index(pid)?;
        self.mutate_proc(i, |p| p.kill());
        Ok(())
    }

    /// Changes a process's nice value; takes effect at the next quantum
    /// recalculation, as in the kernel.
    pub fn renice(&mut self, pid: Pid, nice: i8) -> Result<(), SimError> {
        if !(-20..=19).contains(&nice) {
            return Err(SimError::BadNice(nice));
        }
        let i = self.live_index(pid)?;
        self.procs[i].nice = nice;
        Ok(())
    }

    /// Suspends a process (SIGSTOP).
    pub fn suspend(&mut self, pid: Pid) -> Result<(), SimError> {
        let i = self.live_index(pid)?;
        self.mutate_proc(i, |p| p.suspend());
        Ok(())
    }

    /// Resumes a suspended process (SIGCONT).
    pub fn resume(&mut self, pid: Pid) -> Result<(), SimError> {
        let i = self.live_index(pid)?;
        self.mutate_proc(i, |p| p.resume());
        Ok(())
    }

    /// Cumulative CPU accounting since boot.
    pub fn accounting(&self) -> CpuAccounting {
        self.acct
    }

    /// Resident memory of host + system processes, in MB (excludes
    /// suspended/exited processes and the kernel). O(1): served from the
    /// incrementally maintained aggregate.
    pub fn host_resident_mb(&self) -> u32 {
        self.resident_host_mb
    }

    /// Total resident memory including guest processes and the kernel.
    /// O(1): served from the incrementally maintained aggregate.
    pub fn total_resident_mb(&self) -> u32 {
        self.resident_all_mb + self.cfg.kernel_mem_mb
    }

    /// Memory available for a (new or running) guest working set, in MB:
    /// physical minus kernel minus host residents, floored at zero.
    pub fn free_mem_for_guest_mb(&self) -> u32 {
        self.cfg
            .phys_mem_mb
            .saturating_sub(self.cfg.kernel_mem_mb)
            .saturating_sub(self.host_resident_mb())
    }

    /// Marks the FGCS service as dead — the machine is revoked from the
    /// guest's point of view (URR, state S5). Host processes keep
    /// running; only the observable service liveness changes, which is
    /// exactly what the paper's monitor sees ("its termination indicates
    /// resource revocation").
    pub fn revoke(&mut self) {
        self.service_up = false;
    }

    /// Brings the FGCS service back after a revocation.
    pub fn restore_service(&mut self) {
        self.service_up = true;
    }

    /// Whether the FGCS service daemon responds. This is the liveness a
    /// non-intrusive probe reports; it is `true` on a freshly booted
    /// machine and toggled by [`Machine::revoke`] /
    /// [`Machine::restore_service`].
    pub fn service_alive(&self) -> bool {
        self.service_up
    }

    /// True while the active working sets exceed physical memory.
    pub fn is_thrashing(&self) -> bool {
        self.total_resident_mb() > self.cfg.phys_mem_mb
    }

    /// Current per-tick useful-work efficiency under the memory model.
    pub fn memory_efficiency(&self) -> f64 {
        let total = self.total_resident_mb();
        if total <= self.cfg.phys_mem_mb {
            1.0
        } else {
            (self.cfg.phys_mem_mb as f64 / total as f64).powf(self.cfg.thrash_exponent)
        }
    }

    /// Advances the machine by one tick.
    pub fn step(&mut self) {
        // 0. A thrashing machine stalls on page-fault I/O: the disk is
        //    the bottleneck and nobody computes. The stall evaporates if
        //    the memory pressure is gone (e.g. a process was killed).
        if self.now < self.iowait_until {
            if self.is_thrashing() {
                self.acct.iowait += 1;
                self.now += 1;
                return;
            }
            self.iowait_until = self.now;
        }

        // 1. Wake expiring sleepers so they can compete this tick. The
        //    loop already visits every sleeper, so refresh the wake
        //    horizon and the aggregates as it goes (a wake can also be an
        //    exit, via the phase-list sentinel).
        let mut min_sleep: Option<u64> = None;
        for i in 0..self.procs.len() {
            if !matches!(self.procs[i].state, RunState::Sleeping { .. }) {
                continue;
            }
            let was_occupying = self.procs[i].occupies_memory();
            self.procs[i].sleep_tick();
            self.reconcile_aggregates(i, was_occupying, false);
            if let RunState::Sleeping { remaining } = self.procs[i].state {
                min_sleep = Some(min_sleep.map_or(remaining, |m| m.min(remaining)));
            }
        }
        self.sleep_min = min_sleep;
        self.sleep_min_valid = true;

        // 2. Idle if nothing is runnable.
        if self.runnable_count == 0 {
            self.acct.idle += 1;
            self.now += 1;
            self.current = None;
            return;
        }

        // 3. Epoch end: every runnable has an exhausted counter →
        //    recalculate quanta for ALL processes (sleepers bank bonus).
        let all_exhausted = self
            .procs
            .iter()
            .filter(|p| p.is_runnable())
            .all(|p| p.counter == 0);
        if all_exhausted {
            self.recalcs += 1;
            for p in &mut self.procs {
                if !p.is_exited() {
                    p.counter = p.counter / 2 + nice_to_ticks(p.nice);
                }
            }
        }

        // 4. Pick max goodness; ties prefer the current process, then the
        //    lowest pid (stable iteration order).
        let mut best: Option<usize> = None;
        let mut best_goodness = 0i64;
        for (i, p) in self.procs.iter().enumerate() {
            if !p.is_runnable() {
                continue;
            }
            let g = goodness(p);
            let wins = match best {
                None => true,
                Some(b) => {
                    g > best_goodness
                        || (g == best_goodness
                            && Some(i) == self.current
                            && Some(b) != self.current)
                }
            };
            if wins {
                best = Some(i);
                best_goodness = g;
            }
        }
        let chosen = best.expect("a runnable process exists");

        // 5. Run it for the tick. Under thrashing the work itself
        //    retires, but the machine then stalls on page-fault I/O for
        //    (1-eff)/eff ticks, throttling everyone's CPU usage to eff.
        let eff = self.memory_efficiency();
        {
            let p = &mut self.procs[chosen];
            p.counter = p.counter.saturating_sub(1);
            p.run_tick(1.0);
        }
        // The tick may have completed the busy period: the chosen can now
        // be sleeping or exited.
        self.reconcile_aggregates(chosen, true, true);
        if let RunState::Sleeping { remaining } = self.procs[chosen].state {
            self.sleep_min = Some(match self.sleep_min {
                Some(m) => m.min(remaining),
                None => remaining,
            });
        }
        if eff < 1.0 {
            self.stall_debt += ((1.0 - eff) / eff).min(50.0);
            let whole = self.stall_debt.floor();
            if whole >= 1.0 {
                self.stall_debt -= whole;
                self.iowait_until = self.now + 1 + whole as u64;
            }
        } else {
            self.stall_debt = 0.0;
        }
        match self.procs[chosen].spec.class {
            ProcClass::Host => self.acct.host += 1,
            ProcClass::System => self.acct.system += 1,
            ProcClass::Guest => self.acct.guest += 1,
        }
        if let Some(log) = &mut self.run_log {
            log.push((self.now, self.procs[chosen].pid));
        }

        // 6. Everyone else who wanted the CPU waited.
        for (i, p) in self.procs.iter_mut().enumerate() {
            if i != chosen && p.is_runnable() {
                p.wait_ticks += 1;
            }
        }

        self.current = Some(chosen);
        self.now += 1;
    }

    /// Advances the machine by `n` ticks.
    ///
    /// Uses the event-horizon fast path: whole runs of ticks whose
    /// scheduling decision provably cannot change are retired in one
    /// bulk update, falling back to [`Machine::step`] on every tick
    /// where an event (a wake, an epoch recalculation, a quantum or
    /// busy-period boundary, a thrashing transition) can alter the
    /// outcome. Tick-for-tick equivalent to calling `step()` `n` times —
    /// see `tests/equivalence.rs` and the DESIGN notes.
    pub fn run_ticks(&mut self, n: u64) {
        let mut rem = n;
        while rem > 0 {
            let k = self.try_batch(rem);
            if k == 0 {
                self.step();
                rem -= 1;
            } else {
                rem -= k;
            }
        }
    }

    /// Advances the machine by `n` ticks strictly through the per-tick
    /// reference path, never batching. The equivalence suite drives one
    /// machine through this and a twin through [`Machine::run_ticks`];
    /// the throughput benchmarks use it as the before-optimization
    /// baseline.
    pub fn run_ticks_stepwise(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Attempts to retire up to `rem` ticks whose outcome is fully
    /// determined, in O(procs) bulk updates. Returns the number of ticks
    /// retired; 0 means the next tick must go through [`Machine::step`].
    ///
    /// A run of ticks is batchable when no *event* lands inside it. The
    /// events, each contributing one bound on the batch length `k`:
    ///
    /// * the chosen process exhausts its quantum (`counter`);
    /// * the chosen's decaying goodness falls below the best other
    ///   runnable's constant goodness (`margin`);
    /// * the chosen finishes its busy period (`busy_left`);
    /// * the earliest sleeper's timer expires (`min_sleep`);
    /// * a pending iowait stall ends (`iowait_until`).
    ///
    /// Epoch recalculations and wakes due *this* tick are never batched.
    /// Thrashing spans (fractional efficiency) batch through
    /// [`Machine::batch_thrash_span`], which replays the stall-debt
    /// arithmetic scalar-exactly.
    fn try_batch(&mut self, rem: u64) -> u64 {
        #[cfg(debug_assertions)]
        self.assert_aggregates();
        if rem < 2 {
            return 0;
        }

        // Pending page-fault stall: sleep timers are frozen and nobody
        // computes, so the whole remaining stall collapses into one
        // update while the memory pressure lasts. `step()` re-checks the
        // pressure every stall tick, but nothing can change it mid-stall
        // (only control calls can, and they end any batch by returning
        // to the caller), so one check covers the run.
        if self.now < self.iowait_until {
            if self.is_thrashing() {
                let k = rem.min(self.iowait_until - self.now);
                self.acct.iowait += k;
                self.now += k;
                return k;
            }
            self.iowait_until = self.now;
        }

        // One scan replaces step()'s separate wake / selection passes:
        // scheduler selection under the exact step() rules, the
        // runner-up goodness for the margin bound, and the wake horizon.
        let mut best: Option<usize> = None;
        let mut best_g = 0i64;
        let mut runner_up_g = 0i64;
        let mut other_runnables = false;
        let mut min_sleep: Option<u64> = None;
        for (i, p) in self.procs.iter().enumerate() {
            match p.state {
                RunState::Sleeping { remaining } => {
                    min_sleep = Some(min_sleep.map_or(remaining, |m| m.min(remaining)));
                }
                RunState::Runnable => {
                    let g = goodness(p);
                    let wins = match best {
                        None => true,
                        Some(b) => {
                            g > best_g
                                || (g == best_g
                                    && Some(i) == self.current
                                    && Some(b) != self.current)
                        }
                    };
                    if wins {
                        if best.is_some() {
                            other_runnables = true;
                            runner_up_g = runner_up_g.max(best_g);
                        }
                        best = Some(i);
                        best_g = g;
                    } else {
                        other_runnables = true;
                        runner_up_g = runner_up_g.max(g);
                    }
                }
                _ => {}
            }
        }
        if self.sleep_min_valid {
            debug_assert_eq!(self.sleep_min, min_sleep, "sleep horizon drifted");
        }
        self.sleep_min = min_sleep;
        self.sleep_min_valid = true;

        if min_sleep == Some(0) {
            return 0; // a sleeper wakes this tick and competes
        }

        let Some(chosen) = best else {
            // Idle horizon: nothing can become runnable before the next
            // wake (or ever, if nobody sleeps).
            let k = min_sleep.map_or(rem, |m| rem.min(m));
            if k < 2 {
                return 0;
            }
            for p in &mut self.procs {
                p.sleep_bulk(k);
            }
            if let Some(m) = &mut self.sleep_min {
                *m -= k;
            }
            self.acct.idle += k;
            self.current = None;
            self.now += k;
            return k;
        };

        if best_g == 0 {
            return 0; // epoch boundary: step() recalculates quanta
        }

        // The chosen's goodness decays by one per tick while every other
        // runnable's stays constant, and ties prefer the current process
        // (which the chosen is from its first batched tick on), so it
        // keeps winning for `best_g - runner_up_g + 1` ticks. The margin
        // can't outlive the quantum: goodness = counter + (20 - nice)
        // with 20 - nice >= 1, so the counter bound always binds first.
        let margin = if other_runnables {
            (best_g - runner_up_g + 1) as u64
        } else {
            u64::MAX
        };

        // Under memory pressure the chosen's work ticks interleave with
        // page-fault stalls; a dedicated path batches the whole span.
        // `is_thrashing()` (an O(1) compare on the cached aggregate) is
        // the same predicate as `memory_efficiency() < 1.0` sans `powf`.
        if self.is_thrashing() {
            return self.batch_thrash_span(rem, chosen, margin, min_sleep);
        }

        let p = &self.procs[chosen];
        let mut k = rem.min(p.counter).min(p.progress.busy_left).min(margin);
        if let Some(m) = min_sleep {
            k = k.min(m);
        }
        if k < 2 {
            return 0;
        }

        // Bulk-apply the k identical ticks in step() order. Sleep timers
        // tick down exactly as on the per-tick path; k <= min_sleep so
        // nobody wakes mid-batch, and the chosen's own new sleep (if its
        // busy period ends with the batch) starts *after* these ticks,
        // so it must not be decremented here — run_bulk runs after.
        for sp in &mut self.procs {
            sp.sleep_bulk(k);
        }
        if let Some(m) = &mut self.sleep_min {
            *m -= k;
        }
        {
            let p = &mut self.procs[chosen];
            p.counter -= k;
            p.run_bulk(k);
        }
        self.reconcile_aggregates(chosen, true, true);
        if let RunState::Sleeping { remaining } = self.procs[chosen].state {
            self.sleep_min = Some(match self.sleep_min {
                Some(m) => m.min(remaining),
                None => remaining,
            });
        }
        // Full efficiency on every batched tick: step() clears any
        // leftover fractional stall debt on such ticks.
        self.stall_debt = 0.0;
        match self.procs[chosen].spec.class {
            ProcClass::Host => self.acct.host += k,
            ProcClass::System => self.acct.system += k,
            ProcClass::Guest => self.acct.guest += k,
        }
        if let Some(log) = &mut self.run_log {
            let pid = self.procs[chosen].pid;
            let t0 = self.now;
            log.extend((0..k).map(|j| (t0 + j, pid)));
        }
        for (i, sp) in self.procs.iter_mut().enumerate() {
            if i != chosen && sp.is_runnable() {
                sp.wait_ticks += k;
            }
        }
        self.current = Some(chosen);
        self.now += k;
        k
    }

    /// Batches a thrashing span: `w` work ticks by `chosen`, each
    /// followed by the page-fault stall its fractional efficiency
    /// charges, exactly as the per-tick path interleaves them.
    ///
    /// Equivalence argument: memory aggregates cannot change inside the
    /// span (no wake lands before the bound `min_sleep`, nobody else
    /// runs, and the chosen's busy period can end only on the *last*
    /// work tick), so the efficiency — and therefore the per-tick debt
    /// increment `d` — is bit-constant. The scalar loop below replays
    /// `step()`'s float sequence verbatim (`debt += d; floor; subtract`)
    /// so the residual `stall_debt` lands on identical bits. Stalls of
    /// the final work tick are left *pending* (as `iowait_until`)
    /// whenever that tick ends the busy period or the tick budget runs
    /// out, because `step()` re-checks the memory pressure on every
    /// stall tick and the pressure may have just changed.
    fn batch_thrash_span(
        &mut self,
        rem: u64,
        chosen: usize,
        margin: u64,
        min_sleep: Option<u64>,
    ) -> u64 {
        let d = {
            let eff = self.memory_efficiency();
            ((1.0 - eff) / eff).min(50.0)
        };
        let busy0 = self.procs[chosen].progress.busy_left;
        let mut cap_w = self.procs[chosen].counter.min(busy0).min(margin);
        if let Some(m) = min_sleep {
            cap_w = cap_w.min(m);
        }
        if cap_w == 0 {
            return 0;
        }

        let log_on = self.run_log.is_some();
        let mut log_positions: Vec<u64> = Vec::new();
        let mut debt = self.stall_debt;
        let mut w: u64 = 0;
        let mut consumed_stalls: u64 = 0;
        // Absolute tick position as the span replays; becomes `now`.
        let mut pos = self.now;
        // `iowait_until` as the per-tick path would have left it: set by
        // the last work tick whose debt crossed a whole stall.
        let mut iowait_until = None;
        while w < cap_w && w + consumed_stalls < rem {
            if log_on {
                log_positions.push(pos);
            }
            w += 1;
            debt += d;
            let whole = debt.floor();
            pos += 1;
            if whole >= 1.0 {
                debt -= whole;
                let stall = whole as u64;
                iowait_until = Some(pos + stall);
                if w == busy0 {
                    // The busy period ends on this tick; the pressure
                    // may change, so its stall is re-checked per tick.
                    break;
                }
                let avail = rem - (w + consumed_stalls);
                let c = stall.min(avail);
                consumed_stalls += c;
                pos += c;
                if c < stall {
                    break; // tick budget exhausted mid-stall
                }
            }
        }
        let total = w + consumed_stalls;
        if total < 2 {
            return 0;
        }

        // Bulk-apply, in step() order. Sleep timers tick only on work
        // ticks (stall ticks return before the wake pass), hence `w`.
        for sp in &mut self.procs {
            sp.sleep_bulk(w);
        }
        if let Some(m) = &mut self.sleep_min {
            *m -= w;
        }
        {
            let p = &mut self.procs[chosen];
            p.counter -= w;
            p.run_bulk(w);
        }
        self.reconcile_aggregates(chosen, true, true);
        if let RunState::Sleeping { remaining } = self.procs[chosen].state {
            self.sleep_min = Some(match self.sleep_min {
                Some(m) => m.min(remaining),
                None => remaining,
            });
        }
        self.stall_debt = debt;
        if let Some(u) = iowait_until {
            self.iowait_until = u;
        }
        match self.procs[chosen].spec.class {
            ProcClass::Host => self.acct.host += w,
            ProcClass::System => self.acct.system += w,
            ProcClass::Guest => self.acct.guest += w,
        }
        self.acct.iowait += consumed_stalls;
        if let Some(log) = &mut self.run_log {
            let pid = self.procs[chosen].pid;
            log.extend(log_positions.into_iter().map(|t| (t, pid)));
        }
        for (i, sp) in self.procs.iter_mut().enumerate() {
            if i != chosen && sp.is_runnable() {
                sp.wait_ticks += w;
            }
        }
        self.current = Some(chosen);
        self.now = pos;
        total
    }

    /// Measures CPU accounting over the next `ticks` ticks and returns
    /// the delta — the primitive behind every utilization measurement in
    /// the contention experiments.
    pub fn measure(&mut self, ticks: u64) -> CpuAccounting {
        let before = self.acct;
        self.run_ticks(ticks);
        self.acct.since(&before)
    }

    /// CPU usage of one pid over the next `ticks` ticks.
    pub fn measure_pid(&mut self, pid: Pid, ticks: u64) -> Result<f64, SimError> {
        let i = self.index(pid)?;
        let before = self.procs[i].cpu_ticks;
        self.run_ticks(ticks);
        Ok((self.procs[i].cpu_ticks - before) as f64 / ticks as f64)
    }
}

/// The Linux 2.4 goodness function (CPU-bound part): `0` when the quantum
/// is exhausted, else `counter + 20 − nice`.
#[inline]
fn goodness(p: &Process) -> i64 {
    if p.counter == 0 {
        0
    } else {
        p.counter as i64 + 20 - p.nice as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::{Demand, MemSpec};
    use crate::time::secs;

    fn host(usage: f64) -> ProcSpec {
        ProcSpec::synthetic_host(format!("h{usage}"), usage, 40)
    }

    #[test]
    fn empty_machine_idles() {
        let mut m = Machine::default_linux();
        m.run_ticks(100);
        assert_eq!(m.accounting().idle, 100);
        assert_eq!(m.now(), 100);
    }

    #[test]
    fn lone_cpu_bound_process_gets_everything() {
        let mut m = Machine::default_linux();
        m.spawn(ProcSpec::cpu_bound_guest("g", 0));
        let d = m.measure(secs(10));
        assert_eq!(d.guest, secs(10));
        assert_eq!(d.idle, 0);
    }

    #[test]
    fn duty_cycle_achieves_isolated_usage() {
        let mut m = Machine::default_linux();
        m.spawn(host(0.3));
        let d = m.measure(secs(60));
        let usage = d.host_load();
        assert!((usage - 0.3).abs() < 0.02, "usage {usage}");
    }

    #[test]
    fn equal_cpu_bound_processes_share_evenly() {
        let mut m = Machine::default_linux();
        m.spawn(ProcSpec::new(
            "a",
            ProcClass::Host,
            0,
            Demand::CpuBound { total_work: None },
            MemSpec::tiny(),
        ));
        m.spawn(ProcSpec::cpu_bound_guest("b", 0));
        let d = m.measure(secs(30));
        let host_share = d.host as f64 / d.total() as f64;
        assert!((host_share - 0.5).abs() < 0.02, "host share {host_share}");
    }

    #[test]
    fn nice19_gets_quantum_ratio_share() {
        // Two CPU-bound processes, nice 0 vs nice 19: per epoch the nice-0
        // process gets 6 ticks and the nice-19 process 1 tick, so the
        // shares approach 6/7 and 1/7.
        let mut m = Machine::default_linux();
        m.spawn(ProcSpec::new(
            "h",
            ProcClass::Host,
            0,
            Demand::CpuBound { total_work: None },
            MemSpec::tiny(),
        ));
        m.spawn(ProcSpec::cpu_bound_guest("g", 19));
        let d = m.measure(secs(60));
        let guest_share = d.guest as f64 / d.total() as f64;
        assert!(
            (guest_share - 1.0 / 7.0).abs() < 0.02,
            "guest share {guest_share}"
        );
    }

    #[test]
    fn interactive_host_preempts_cpu_bound_guest() {
        // A 10%-duty host with a nice-0 CPU-bound guest: the host's
        // banked quantum lets it preempt, so its usage barely drops.
        let mut m = Machine::default_linux();
        let h = m.spawn(host(0.1));
        m.spawn(ProcSpec::cpu_bound_guest("g", 0));
        m.run_ticks(secs(5)); // warm up counters
        let usage = m.measure_pid(h, secs(60)).unwrap();
        assert!(usage > 0.09, "host usage {usage}");
    }

    #[test]
    fn cpu_time_is_conserved() {
        let mut m = Machine::default_linux();
        m.spawn(host(0.4));
        m.spawn(host(0.2));
        m.spawn(ProcSpec::cpu_bound_guest("g", 19));
        m.run_ticks(12_345);
        let a = m.accounting();
        assert_eq!(a.total(), 12_345);
        let proc_ticks: u64 = m.processes().map(|p| p.cpu_ticks).sum();
        assert_eq!(proc_ticks + a.idle, 12_345);
    }

    #[test]
    fn kill_stops_scheduling() {
        let mut m = Machine::default_linux();
        let g = m.spawn(ProcSpec::cpu_bound_guest("g", 0));
        m.run_ticks(100);
        m.kill(g).unwrap();
        let before = m.process(g).unwrap().cpu_ticks;
        m.run_ticks(100);
        assert_eq!(m.process(g).unwrap().cpu_ticks, before);
        assert_eq!(m.accounting().idle, 100);
    }

    #[test]
    fn suspend_and_resume_control_scheduling() {
        let mut m = Machine::default_linux();
        let g = m.spawn(ProcSpec::cpu_bound_guest("g", 0));
        m.suspend(g).unwrap();
        m.run_ticks(50);
        assert_eq!(m.process(g).unwrap().cpu_ticks, 0);
        m.resume(g).unwrap();
        m.run_ticks(50);
        assert_eq!(m.process(g).unwrap().cpu_ticks, 50);
    }

    #[test]
    fn renice_takes_effect() {
        let mut m = Machine::default_linux();
        m.spawn(ProcSpec::new(
            "h",
            ProcClass::Host,
            0,
            Demand::CpuBound { total_work: None },
            MemSpec::tiny(),
        ));
        let g = m.spawn(ProcSpec::cpu_bound_guest("g", 0));
        m.renice(g, 19).unwrap();
        let d = m.measure(secs(60));
        let guest_share = d.guest as f64 / d.total() as f64;
        assert!(guest_share < 0.2, "guest share {guest_share}");
    }

    #[test]
    fn control_calls_validate_pids() {
        let mut m = Machine::default_linux();
        assert_eq!(m.kill(Pid(0)), Err(SimError::NoSuchProcess(Pid(0))));
        let g = m.spawn(ProcSpec::cpu_bound_guest("g", 0));
        m.kill(g).unwrap();
        assert_eq!(m.kill(g), Err(SimError::ProcessExited(g)));
        assert_eq!(m.renice(g, 40), Err(SimError::BadNice(40)));
    }

    #[test]
    fn memory_accounting_and_thrashing_flag() {
        let mut m = Machine::new(MachineConfig::solaris_384mb());
        assert!(!m.is_thrashing());
        assert_eq!(m.free_mem_for_guest_mb(), 284);
        let h = m.spawn(ProcSpec::new(
            "bigh",
            ProcClass::Host,
            0,
            Demand::CpuBound { total_work: None },
            MemSpec::resident(200),
        ));
        assert_eq!(m.free_mem_for_guest_mb(), 84);
        assert!(!m.is_thrashing());
        let g = m.spawn(ProcSpec::new(
            "bigg",
            ProcClass::Guest,
            0,
            Demand::CpuBound { total_work: None },
            MemSpec::resident(190),
        ));
        assert!(m.is_thrashing());
        assert!(m.memory_efficiency() < 1.0);
        // Suspending the guest pages it out and ends the thrashing.
        m.suspend(g).unwrap();
        assert!(!m.is_thrashing());
        assert_eq!(m.memory_efficiency(), 1.0);
        // Host resident unchanged by guest state.
        assert_eq!(m.host_resident_mb(), 200);
        m.kill(h).unwrap();
        assert_eq!(m.host_resident_mb(), 0);
    }

    #[test]
    fn thrashing_slows_progress() {
        // Same finite workload with and without memory pressure.
        let work = secs(5);
        let run = |extra_mem: u32| -> u64 {
            let mut m = Machine::new(MachineConfig::solaris_384mb());
            m.spawn(ProcSpec::new(
                "job",
                ProcClass::Host,
                0,
                Demand::CpuBound {
                    total_work: Some(work),
                },
                MemSpec::resident(150),
            ));
            if extra_mem > 0 {
                m.spawn(ProcSpec::new(
                    "hog",
                    ProcClass::Host,
                    0,
                    Demand::duty_cycle(0.01, 100),
                    MemSpec::resident(extra_mem),
                ));
            }
            let mut ticks = 0;
            while !m.processes().next().unwrap().is_exited() && ticks < secs(120) {
                m.step();
                ticks += 1;
            }
            ticks
        };
        let fast = run(0);
        let slow = run(350); // 150 + 350 + 100 kernel >> 384
        assert!(slow > fast + fast / 2, "fast {fast} slow {slow}");
        // And the iowait accounting must show the stall.
        let mut m = Machine::new(MachineConfig::solaris_384mb());
        m.spawn(ProcSpec::new(
            "hog",
            ProcClass::Host,
            0,
            Demand::CpuBound { total_work: None },
            MemSpec::resident(500),
        ));
        let d = m.measure(secs(10));
        assert!(d.iowait > 0, "no iowait recorded: {d:?}");
        assert!(
            d.host_load() < 0.9,
            "host load should collapse: {}",
            d.host_load()
        );
    }

    #[test]
    fn goodness_prefers_higher_counter_at_same_nice() {
        let mut a = Process::spawn(Pid(0), ProcSpec::cpu_bound_guest("a", 0), 0);
        let b = Process::spawn(Pid(1), ProcSpec::cpu_bound_guest("b", 0), 0);
        a.counter = 10;
        assert!(goodness(&a) > goodness(&b));
    }

    #[test]
    fn goodness_zero_when_exhausted() {
        let mut p = Process::spawn(Pid(0), ProcSpec::cpu_bound_guest("a", -10), 0);
        p.counter = 0;
        assert_eq!(goodness(&p), 0);
    }

    #[test]
    fn epoch_pattern_is_six_to_one_for_nice19() {
        // Two CPU-bound processes, nice 0 and nice 19: after warm-up,
        // each scheduler epoch must run the nice-0 process for its 6-tick
        // quantum and the nice-19 process for its single tick — the 2.4
        // NICE_TO_TICKS table in action.
        let mut m = Machine::default_linux();
        let h = m.spawn(ProcSpec::new(
            "h",
            ProcClass::Host,
            0,
            Demand::CpuBound { total_work: None },
            MemSpec::tiny(),
        ));
        let g = m.spawn(ProcSpec::cpu_bound_guest("g", 19));
        m.run_ticks(secs(2)); // settle counters
        m.enable_run_log();
        m.run_ticks(70); // ten epochs
        let log = m.run_log();
        // Count maximal runs of each pid.
        let mut runs: Vec<(Pid, u64)> = Vec::new();
        for &(_, pid) in log {
            match runs.last_mut() {
                Some((p, n)) if *p == pid => *n += 1,
                _ => runs.push((pid, 1)),
            }
        }
        // Drop the possibly-truncated first and last runs.
        for (pid, len) in &runs[1..runs.len() - 1] {
            if *pid == h {
                assert_eq!(*len, 6, "host quantum run length");
            } else {
                assert_eq!(*pid, g);
                assert_eq!(*len, 1, "guest quantum run length");
            }
        }
        assert!(runs.len() >= 10, "expected several epochs, got {runs:?}");
    }

    #[test]
    fn run_log_is_empty_unless_enabled() {
        let mut m = Machine::default_linux();
        m.spawn(ProcSpec::cpu_bound_guest("g", 0));
        m.run_ticks(10);
        assert!(m.run_log().is_empty());
        m.enable_run_log();
        m.run_ticks(5);
        assert_eq!(m.run_log().len(), 5);
        assert_eq!(m.run_log()[0].1, Pid(0));
    }

    #[test]
    fn revocation_toggles_service_liveness() {
        let mut m = Machine::default_linux();
        assert!(m.service_alive(), "a freshly booted machine serves");
        m.spawn(ProcSpec::cpu_bound_guest("g", 19));
        m.revoke();
        assert!(!m.service_alive());
        // The host keeps running while the service is down.
        let before = m.now();
        m.run_ticks(10);
        assert_eq!(m.now(), before + 10);
        m.restore_service();
        assert!(m.service_alive());
    }

    #[test]
    fn exhausted_process_waits_for_epoch() {
        // With one CPU-bound nice-0 process and one nice-19, the nice-19
        // process must still run within every epoch (starvation freedom).
        let mut m = Machine::default_linux();
        m.spawn(ProcSpec::new(
            "h",
            ProcClass::Host,
            0,
            Demand::CpuBound { total_work: None },
            MemSpec::tiny(),
        ));
        let g = m.spawn(ProcSpec::cpu_bound_guest("g", 19));
        m.run_ticks(secs(10));
        assert!(m.process(g).unwrap().cpu_ticks > 0, "nice 19 starved");
    }
}
