//! Process model.
//!
//! A simulated process is a CPU-demand pattern plus a memory footprint
//! and a nice value. The demand patterns cover everything the paper's
//! experiments need:
//!
//! * duty-cycle loops — the synthetic host programs of §3.2.1, which
//!   compute for a burst and sleep the rest of the period to hit a target
//!   *isolated CPU usage*;
//! * fully CPU-bound programs — the guest applications;
//! * phase lists — compile jobs and interactive bursts in the Musbus-like
//!   host workloads.

use crate::time::Tick;

/// Process identifier, unique within one [`crate::machine::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Whether a process belongs to the host user, a guest job, or the
/// system itself. The FGCS monitor aggregates Host + System usage as
/// "host resource usage" — system daemons (e.g. `updatedb`) are host
/// processes from the guest's point of view, exactly as in §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcClass {
    /// A local user's process.
    Host,
    /// A foreign guest job managed by the FGCS system.
    Guest,
    /// An OS daemon; counted as host load by the monitor.
    System,
}

impl ProcClass {
    /// True for processes whose CPU usage counts as host load.
    pub fn counts_as_host(self) -> bool {
        !matches!(self, ProcClass::Guest)
    }
}

/// Memory footprint of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSpec {
    /// Resident set size in MB (the working set competing for RAM).
    pub resident_mb: u32,
    /// Virtual size in MB (reported, not charged).
    pub virtual_mb: u32,
}

impl MemSpec {
    /// A footprint with equal resident and virtual size.
    pub const fn resident(mb: u32) -> Self {
        MemSpec {
            resident_mb: mb,
            virtual_mb: mb,
        }
    }

    /// The negligible footprint of the synthetic CPU-contention programs
    /// ("all the programs have very small resident sets", §3.2.1).
    pub const fn tiny() -> Self {
        MemSpec {
            resident_mb: 2,
            virtual_mb: 4,
        }
    }
}

/// One compute/sleep phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// CPU work in ticks.
    pub busy: u64,
    /// Sleep after the work, in ticks.
    pub idle: u64,
}

/// CPU-demand pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Demand {
    /// Repeat `busy` ticks of work then `idle` ticks of sleep, forever.
    DutyCycle {
        /// CPU work per period, in ticks.
        busy: u64,
        /// Sleep per period, in ticks.
        idle: u64,
    },
    /// Always wants the CPU; exits after `total_work` ticks if given.
    CpuBound {
        /// Remaining CPU work in ticks, or `None` to run forever.
        total_work: Option<u64>,
    },
    /// A sequence of phases, optionally repeated forever. A process with
    /// `repeat == false` exits after its last phase.
    Phases {
        /// The phase list; must be non-empty.
        phases: Vec<Phase>,
        /// Whether to loop the phase list.
        repeat: bool,
    },
}

impl Demand {
    /// Builds a duty cycle achieving isolated CPU usage `usage` over the
    /// given `period_ticks` (busy = round(usage × period), clamped so a
    /// nonzero usage gets at least one busy tick and a usage below 1.0
    /// keeps at least one idle tick).
    ///
    /// # Panics
    /// Panics if `usage` is outside `[0, 1]` or `period_ticks == 0`.
    pub fn duty_cycle(usage: f64, period_ticks: u64) -> Demand {
        assert!((0.0..=1.0).contains(&usage), "usage in [0,1]");
        assert!(period_ticks > 0, "period must be positive");
        let mut busy = (usage * period_ticks as f64).round() as u64;
        if usage > 0.0 {
            busy = busy.max(1);
        }
        if usage < 1.0 {
            busy = busy.min(period_ticks - 1);
        }
        let idle = period_ticks - busy;
        if idle == 0 {
            Demand::CpuBound { total_work: None }
        } else {
            Demand::DutyCycle { busy, idle }
        }
    }

    /// The long-run isolated CPU usage this demand would achieve on an
    /// otherwise idle machine.
    pub fn isolated_usage(&self) -> f64 {
        match self {
            Demand::DutyCycle { busy, idle } => *busy as f64 / (*busy + *idle) as f64,
            Demand::CpuBound { .. } => 1.0,
            Demand::Phases { phases, .. } => {
                let busy: u64 = phases.iter().map(|p| p.busy).sum();
                let total: u64 = phases.iter().map(|p| p.busy + p.idle).sum();
                if total == 0 {
                    0.0
                } else {
                    busy as f64 / total as f64
                }
            }
        }
    }
}

/// Everything needed to spawn a process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcSpec {
    /// Human-readable name for reports.
    pub name: String,
    /// Host/guest/system classification.
    pub class: ProcClass,
    /// Unix nice value, −20..=19 (only 0..=19 is used by FGCS).
    pub nice: i8,
    /// CPU-demand pattern.
    pub demand: Demand,
    /// Memory footprint.
    pub mem: MemSpec,
}

impl ProcSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        class: ProcClass,
        nice: i8,
        demand: Demand,
        mem: MemSpec,
    ) -> Self {
        assert!((-20..=19).contains(&nice), "nice out of range");
        ProcSpec {
            name: name.into(),
            class,
            nice,
            demand,
            mem,
        }
    }

    /// A tiny-footprint synthetic host program with the given isolated
    /// usage and duty-cycle period.
    pub fn synthetic_host(name: impl Into<String>, usage: f64, period_ticks: u64) -> Self {
        ProcSpec::new(
            name,
            ProcClass::Host,
            0,
            Demand::duty_cycle(usage, period_ticks),
            MemSpec::tiny(),
        )
    }

    /// A fully CPU-bound guest process at the given nice value.
    pub fn cpu_bound_guest(name: impl Into<String>, nice: i8) -> Self {
        ProcSpec::new(
            name,
            ProcClass::Guest,
            nice,
            Demand::CpuBound { total_work: None },
            MemSpec::tiny(),
        )
    }
}

/// Run-state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Wants the CPU.
    Runnable,
    /// Sleeping; `remaining` ticks until it wakes.
    Sleeping {
        /// Ticks left to sleep.
        remaining: u64,
    },
    /// Stopped by SIGSTOP (the FGCS suspension mechanism).
    Suspended {
        /// State to restore on SIGCONT.
        prev: SleepOrRun,
    },
    /// Finished; never scheduled again.
    Exited,
}

/// What a suspended process was doing, restored on resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepOrRun {
    /// Was runnable.
    Runnable,
    /// Was sleeping with this many ticks left.
    Sleeping(u64),
}

/// A live process inside a machine.
#[derive(Debug, Clone)]
pub struct Process {
    /// Identifier.
    pub pid: Pid,
    /// The spawning spec (name/class/mem retained for reporting).
    pub spec: ProcSpec,
    /// Current nice value (may differ from spec after `renice`).
    pub nice: i8,
    /// Scheduler quantum counter, in ticks.
    pub counter: u64,
    /// Run-state.
    pub state: RunState,
    /// Progress within the demand pattern.
    pub progress: DemandProgress,
    /// Total CPU ticks consumed since spawn.
    pub cpu_ticks: u64,
    /// Fractional useful work accumulated toward the next whole tick of
    /// demand progress (only below 1.0 between ticks); carries the
    /// deterministic thrashing model.
    pub work_frac: f64,
    /// Total ticks spent runnable but not running (scheduler wait).
    pub wait_ticks: u64,
    /// Tick at which the process was spawned.
    pub spawned_at: Tick,
}

/// Cursor into a [`Demand`] pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandProgress {
    /// Index of the current phase (always 0 for simple demands).
    pub phase: usize,
    /// CPU ticks still to burn in the current busy period.
    pub busy_left: u64,
}

impl Process {
    /// Creates a process in the state it has immediately after `fork`:
    /// runnable at the start of its first busy period, with a fresh
    /// quantum.
    pub fn spawn(pid: Pid, spec: ProcSpec, now: Tick) -> Self {
        let busy_left = match &spec.demand {
            Demand::DutyCycle { busy, .. } => *busy,
            Demand::CpuBound { total_work } => total_work.unwrap_or(u64::MAX),
            Demand::Phases { phases, .. } => phases.first().map(|p| p.busy).unwrap_or(0),
        };
        let nice = spec.nice;
        let mut p = Process {
            pid,
            spec,
            nice,
            counter: nice_to_ticks(nice),
            state: RunState::Runnable,
            progress: DemandProgress {
                phase: 0,
                busy_left,
            },
            cpu_ticks: 0,
            work_frac: 0.0,
            wait_ticks: 0,
            spawned_at: now,
        };
        // A phase list that starts with zero busy work begins by sleeping;
        // an empty phase list exits immediately.
        p.settle_after_work();
        p
    }

    /// True if the scheduler may pick this process.
    pub fn is_runnable(&self) -> bool {
        matches!(self.state, RunState::Runnable)
    }

    /// True once exited.
    pub fn is_exited(&self) -> bool {
        matches!(self.state, RunState::Exited)
    }

    /// True while suspended.
    pub fn is_suspended(&self) -> bool {
        matches!(self.state, RunState::Suspended { .. })
    }

    /// Whether this process's resident set currently competes for
    /// physical memory. Suspended processes are assumed paged out (the
    /// kernel reclaims an un-running job's pages quickly under pressure),
    /// and exited processes are gone.
    pub fn occupies_memory(&self) -> bool {
        !self.is_exited() && !self.is_suspended()
    }

    /// Consumes one tick of CPU, advancing the demand pattern. `useful`
    /// is the fraction of the tick that did real work — less than 1 under
    /// memory thrashing, where part of every tick services page faults.
    /// Fractions accumulate deterministically, so a process running at
    /// efficiency 0.25 retires one tick of demand every four CPU ticks.
    ///
    /// Must only be called on a runnable process.
    pub fn run_tick(&mut self, useful: f64) {
        debug_assert!(self.is_runnable(), "ran a non-runnable process");
        self.cpu_ticks += 1;
        self.work_frac += useful.clamp(0.0, 1.0);
        if self.work_frac >= 1.0 {
            self.work_frac -= 1.0;
            self.progress.busy_left = self.progress.busy_left.saturating_sub(1);
            if self.progress.busy_left == 0 {
                self.settle_after_work();
            }
        }
    }

    /// Consumes `k` ticks of CPU at full efficiency in one call —
    /// equivalent to `k` consecutive `run_tick(1.0)` calls. At full
    /// efficiency every tick retires exactly one tick of demand and
    /// leaves `work_frac` unchanged, so only the counters move. The
    /// caller must guarantee `k <= busy_left`, so the demand pattern can
    /// settle at most once, at the end of the batch.
    pub fn run_bulk(&mut self, k: u64) {
        debug_assert!(self.is_runnable(), "ran a non-runnable process");
        debug_assert!(
            k <= self.progress.busy_left,
            "bulk run overshoots the busy period"
        );
        // `run_tick(1.0)` computes `(work_frac + 1.0) - 1.0`, which snaps
        // a sub-ulp fraction left over from thrashing onto the 2^-52
        // grid; once on the grid the value is a fixed point, so applying
        // the rounding once reproduces k applications exactly.
        self.work_frac = (self.work_frac + 1.0) - 1.0;
        self.cpu_ticks += k;
        self.progress.busy_left -= k;
        if self.progress.busy_left == 0 {
            self.settle_after_work();
        }
    }

    /// Advances a sleeping process's timer by `k` ticks at once —
    /// equivalent to `k` [`Process::sleep_tick`] calls that all leave it
    /// asleep. The caller must guarantee `k <= remaining` (a timer at
    /// zero wakes on the *next* tick, which must go through the per-tick
    /// path). No-op for other states.
    pub fn sleep_bulk(&mut self, k: u64) {
        if let RunState::Sleeping { remaining } = self.state {
            debug_assert!(k <= remaining, "bulk sleep would skip the wake tick");
            self.state = RunState::Sleeping {
                remaining: remaining - k,
            };
        }
    }

    /// Called when the current busy period completes: move to the next
    /// sleep / phase / exit according to the demand pattern.
    fn settle_after_work(&mut self) {
        if self.progress.busy_left > 0 {
            return;
        }
        match &self.spec.demand {
            Demand::DutyCycle { busy, idle } => {
                self.state = RunState::Sleeping { remaining: *idle };
                self.progress.busy_left = *busy;
            }
            Demand::CpuBound { total_work } => {
                if total_work.is_some() {
                    self.state = RunState::Exited;
                } else {
                    // busy_left hit 0 only via u64 exhaustion; refill.
                    self.progress.busy_left = u64::MAX;
                }
            }
            Demand::Phases { phases, repeat } => {
                // Sleep out the current phase's idle part, then advance.
                let cur = phases.get(self.progress.phase).copied();
                match cur {
                    None => self.state = RunState::Exited,
                    Some(ph) => {
                        let next = self.progress.phase + 1;
                        let (next_phase, exited) = if next < phases.len() {
                            (next, false)
                        } else if *repeat {
                            (0, false)
                        } else {
                            (0, true)
                        };
                        if ph.idle > 0 {
                            self.state = RunState::Sleeping { remaining: ph.idle };
                        }
                        if exited && ph.idle == 0 {
                            self.state = RunState::Exited;
                            return;
                        }
                        if exited {
                            // Sleep out the tail idle, then exit on wake.
                            self.progress.phase = usize::MAX; // sentinel: exit on wake
                            return;
                        }
                        self.progress.phase = next_phase;
                        self.progress.busy_left = phases[next_phase].busy;
                        if self.progress.busy_left == 0 && ph.idle == 0 {
                            // Degenerate all-zero phase: avoid infinite
                            // loop by exiting.
                            self.state = RunState::Exited;
                        }
                    }
                }
            }
        }
    }

    /// Advances a sleeping process by one tick; wakes it when the timer
    /// expires. No-op for other states.
    ///
    /// A process put to sleep for `S` ticks stays off the CPU for exactly
    /// `S` machine ticks: the timer decrements through `S-1, …, 0` and
    /// the process wakes on the tick *after* it reaches zero.
    pub fn sleep_tick(&mut self) {
        if let RunState::Sleeping { remaining } = self.state {
            if remaining == 0 {
                if self.progress.phase == usize::MAX {
                    self.state = RunState::Exited;
                } else {
                    self.state = RunState::Runnable;
                }
            } else {
                self.state = RunState::Sleeping {
                    remaining: remaining - 1,
                };
            }
        }
    }

    /// Suspends (SIGSTOP). No-op if exited or already suspended.
    pub fn suspend(&mut self) {
        self.state = match self.state {
            RunState::Runnable => RunState::Suspended {
                prev: SleepOrRun::Runnable,
            },
            RunState::Sleeping { remaining } => RunState::Suspended {
                prev: SleepOrRun::Sleeping(remaining),
            },
            other => other,
        };
    }

    /// Resumes (SIGCONT). No-op unless suspended.
    pub fn resume(&mut self) {
        if let RunState::Suspended { prev } = self.state {
            self.state = match prev {
                SleepOrRun::Runnable => RunState::Runnable,
                SleepOrRun::Sleeping(r) => RunState::Sleeping { remaining: r },
            };
        }
    }

    /// Terminates the process.
    pub fn kill(&mut self) {
        self.state = RunState::Exited;
    }
}

/// The Linux 2.4 `NICE_TO_TICKS` mapping for HZ = 100: the per-epoch
/// quantum in ticks. nice 0 → 6 ticks (60 ms), nice 19 → 1 tick (10 ms),
/// nice −20 → 11 ticks.
///
/// This constant is the mechanical origin of the paper's two thresholds:
/// a host process only loses CPU to a lowest-priority guest once its
/// per-period demand exceeds this quantum budget (Th2), while an
/// equal-priority guest starts competing as soon as the host's banked
/// carry-over runs out (Th1).
#[inline]
pub fn nice_to_ticks(nice: i8) -> u64 {
    // 2.4: NICE_TO_TICKS(n) = ((20 - n) >> 2) + 1 for HZ=100.
    (((20 - nice as i64) >> 2) + 1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_to_ticks_matches_kernel_table() {
        assert_eq!(nice_to_ticks(0), 6);
        assert_eq!(nice_to_ticks(19), 1);
        assert_eq!(nice_to_ticks(-20), 11);
        assert_eq!(nice_to_ticks(10), 3);
        // Monotone non-increasing in nice.
        let mut prev = u64::MAX;
        for n in -20..=19 {
            let q = nice_to_ticks(n);
            assert!(q <= prev && q >= 1);
            prev = q;
        }
    }

    #[test]
    fn duty_cycle_targets_usage() {
        let d = Demand::duty_cycle(0.25, 40);
        assert_eq!(d, Demand::DutyCycle { busy: 10, idle: 30 });
        assert!((d.isolated_usage() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn duty_cycle_clamps_extremes() {
        // Tiny usage still gets one busy tick.
        match Demand::duty_cycle(0.001, 40) {
            Demand::DutyCycle { busy, .. } => assert_eq!(busy, 1),
            other => panic!("{other:?}"),
        }
        // Full usage becomes CPU bound.
        assert_eq!(
            Demand::duty_cycle(1.0, 40),
            Demand::CpuBound { total_work: None }
        );
        // Near-full usage keeps one idle tick.
        match Demand::duty_cycle(0.999, 40) {
            Demand::DutyCycle { busy, idle } => {
                assert_eq!(busy, 39);
                assert_eq!(idle, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spawn_starts_runnable_with_quantum() {
        let spec = ProcSpec::synthetic_host("h", 0.5, 40);
        let p = Process::spawn(Pid(1), spec, 0);
        assert!(p.is_runnable());
        assert_eq!(p.counter, 6);
        assert_eq!(p.progress.busy_left, 20);
    }

    #[test]
    fn duty_cycle_lifecycle() {
        let spec = ProcSpec::synthetic_host("h", 0.5, 4); // busy 2, idle 2
        let mut p = Process::spawn(Pid(1), spec, 0);
        p.run_tick(1.0);
        assert!(p.is_runnable());
        p.run_tick(1.0);
        assert!(matches!(p.state, RunState::Sleeping { remaining: 2 }));
        p.sleep_tick(); // 2 -> 1
        p.sleep_tick(); // 1 -> 0
        assert!(!p.is_runnable(), "still sleeping through the final tick");
        p.sleep_tick(); // wake
        assert!(p.is_runnable());
        assert_eq!(p.progress.busy_left, 2);
        assert_eq!(p.cpu_ticks, 2);
    }

    #[test]
    fn cpu_bound_with_budget_exits() {
        let spec = ProcSpec::new(
            "g",
            ProcClass::Guest,
            0,
            Demand::CpuBound {
                total_work: Some(3),
            },
            MemSpec::tiny(),
        );
        let mut p = Process::spawn(Pid(1), spec, 0);
        p.run_tick(1.0);
        p.run_tick(1.0);
        assert!(!p.is_exited());
        p.run_tick(1.0);
        assert!(p.is_exited());
        assert_eq!(p.cpu_ticks, 3);
    }

    #[test]
    fn thrashed_tick_burns_cpu_without_progress() {
        let spec = ProcSpec::new(
            "g",
            ProcClass::Guest,
            0,
            Demand::CpuBound {
                total_work: Some(2),
            },
            MemSpec::tiny(),
        );
        let mut p = Process::spawn(Pid(1), spec, 0);
        p.run_tick(0.0); // paging, no progress
        assert_eq!(p.cpu_ticks, 1);
        assert_eq!(p.progress.busy_left, 2);
        p.run_tick(1.0);
        p.run_tick(1.0);
        assert!(p.is_exited());
    }

    #[test]
    fn fractional_efficiency_accumulates() {
        let spec = ProcSpec::new(
            "g",
            ProcClass::Guest,
            0,
            Demand::CpuBound {
                total_work: Some(1),
            },
            MemSpec::tiny(),
        );
        let mut p = Process::spawn(Pid(1), spec, 0);
        // At 50% efficiency, one tick of demand takes two CPU ticks.
        p.run_tick(0.5);
        assert!(!p.is_exited());
        p.run_tick(0.5);
        assert!(p.is_exited());
        assert_eq!(p.cpu_ticks, 2);
    }

    #[test]
    fn phases_run_in_sequence_then_exit() {
        let spec = ProcSpec::new(
            "compile",
            ProcClass::Host,
            0,
            Demand::Phases {
                phases: vec![Phase { busy: 1, idle: 1 }, Phase { busy: 2, idle: 0 }],
                repeat: false,
            },
            MemSpec::tiny(),
        );
        let mut p = Process::spawn(Pid(1), spec, 0);
        p.run_tick(1.0); // phase 0 busy done -> sleep 1
        assert!(matches!(p.state, RunState::Sleeping { remaining: 1 }));
        p.sleep_tick(); // 1 -> 0
        p.sleep_tick(); // wake into phase 1
        assert!(p.is_runnable());
        p.run_tick(1.0);
        p.run_tick(1.0); // phase 1 done, no idle, no repeat -> exit
        assert!(p.is_exited());
    }

    #[test]
    fn phases_repeat_loops() {
        let spec = ProcSpec::new(
            "loop",
            ProcClass::Host,
            0,
            Demand::Phases {
                phases: vec![Phase { busy: 1, idle: 1 }],
                repeat: true,
            },
            MemSpec::tiny(),
        );
        let mut p = Process::spawn(Pid(1), spec, 0);
        for _ in 0..10 {
            assert!(p.is_runnable());
            p.run_tick(1.0); // busy 1 done -> sleep 1
            p.sleep_tick(); // 1 -> 0
            p.sleep_tick(); // wake
        }
        assert!(p.is_runnable());
    }

    #[test]
    fn suspend_preserves_sleep_timer() {
        let spec = ProcSpec::synthetic_host("h", 0.5, 4);
        let mut p = Process::spawn(Pid(1), spec, 0);
        p.run_tick(1.0);
        p.run_tick(1.0); // now sleeping 2
        p.suspend();
        assert!(p.is_suspended());
        // Suspended: sleep timer frozen.
        p.sleep_tick();
        p.sleep_tick();
        assert!(p.is_suspended());
        p.resume();
        assert!(matches!(p.state, RunState::Sleeping { remaining: 2 }));
    }

    #[test]
    fn suspend_runnable_resumes_runnable() {
        let spec = ProcSpec::cpu_bound_guest("g", 19);
        let mut p = Process::spawn(Pid(1), spec, 0);
        p.suspend();
        assert!(!p.is_runnable());
        assert!(!p.occupies_memory());
        p.resume();
        assert!(p.is_runnable());
    }

    #[test]
    fn kill_is_terminal() {
        let spec = ProcSpec::cpu_bound_guest("g", 0);
        let mut p = Process::spawn(Pid(1), spec, 0);
        p.kill();
        assert!(p.is_exited());
        p.resume();
        assert!(p.is_exited());
        p.sleep_tick();
        assert!(p.is_exited());
    }

    #[test]
    fn isolated_usage_of_phases() {
        let d = Demand::Phases {
            phases: vec![Phase { busy: 3, idle: 1 }, Phase { busy: 1, idle: 3 }],
            repeat: true,
        };
        assert!((d.isolated_usage() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nice out of range")]
    fn nice_range_enforced() {
        ProcSpec::new(
            "x",
            ProcClass::Host,
            21,
            Demand::CpuBound { total_work: None },
            MemSpec::tiny(),
        );
    }
}
