//! The paper's workloads.
//!
//! * [`synthetic`] — the §3.2.1 synthetic programs: tiny-footprint
//!   duty-cycle host processes with prescribed isolated CPU usages, and
//!   host *groups* assembled from random combinations that sum to a
//!   target `LH`, exactly as the paper constructs them.
//! * [`spec`] — the four SPEC CPU2000 guest applications of Table 1
//!   (apsi, galgel, bzip2, mcf), modeled by their measured CPU usage and
//!   memory footprints.
//! * [`musbus`] — the six Musbus-derived interactive host workloads
//!   H1–H6 of Table 1, modeled as small groups of editor / utility /
//!   compiler processes with the table's aggregate footprints.

use fgcs_stats::rng::Rng;

use crate::proc::{Demand, MemSpec, Phase, ProcClass, ProcSpec};

/// Synthetic CPU-contention programs (§3.2.1).
pub mod synthetic {
    use super::*;

    /// Smallest isolated usage a host-group member may have.
    pub const MIN_USAGE: f64 = 0.02;

    /// Largest group size able to split `target_lh` while respecting
    /// [`MIN_USAGE`] (at least 1).
    pub fn max_group_size(target_lh: f64) -> usize {
        ((target_lh / MIN_USAGE).floor() as usize).max(1)
    }

    /// Default duty-cycle period for synthetic host programs, in ticks.
    ///
    /// 700 ms: long enough that a heavy host process outruns its banked
    /// scheduler quantum within a burst (which is what makes contention
    /// measurable at all), short enough to represent interactive tools.
    /// The paper's programs "adjust the sleep time to achieve the given
    /// isolated CPU usages"; their exact period is not reported, so we
    /// fix one and state it here. With the 2.4 quantum table (60 ms at
    /// nice 0, up to ~110 ms banked) this period reproduces the paper's
    /// thresholds: an equal-priority guest causes >5% slowdown from
    /// `LH ≈ 0.2`, a nice-19 guest only from `LH ≈ 0.6`.
    pub const DEFAULT_PERIOD_TICKS: u64 = 70;

    /// A synthetic host process with the given isolated CPU usage.
    pub fn host_process(name: impl Into<String>, usage: f64) -> ProcSpec {
        ProcSpec::synthetic_host(name, usage, DEFAULT_PERIOD_TICKS)
    }

    /// A fully CPU-bound guest process at the given nice value.
    pub fn guest_process(nice: i8) -> ProcSpec {
        ProcSpec::cpu_bound_guest("guest", nice)
    }

    /// A guest with a duty cycle (Figure 3 uses guests with isolated
    /// usages of 0.7–1.0). The period is deliberately coprime-ish with
    /// [`DEFAULT_PERIOD_TICKS`] so guest and host do not phase-lock.
    pub fn guest_with_usage(usage: f64, nice: i8) -> ProcSpec {
        ProcSpec::new(
            "guest",
            ProcClass::Guest,
            nice,
            Demand::duty_cycle(usage, 97),
            MemSpec::tiny(),
        )
    }

    /// Builds a host group of `m` processes whose isolated usages sum to
    /// `target_lh`, by stick-breaking the total into `m` random parts
    /// (each at least `MIN_USAGE`), then jittering the duty-cycle period
    /// of each member so group members do not phase-lock.
    ///
    /// Mirrors the paper: "we randomly chose M host programs with
    /// different isolated CPU usages and ran them together ... if the
    /// total CPU usage of the M processes was equal to LH, they were
    /// chosen as a combination".
    ///
    /// # Panics
    /// Panics if `m == 0` or `target_lh` is not in `(0, 1]` or the floor
    /// constraint `m * MIN_USAGE > target_lh` makes the split impossible.
    pub fn host_group(rng: &mut Rng, target_lh: f64, m: usize) -> Vec<ProcSpec> {
        assert!(m >= 1, "empty host group");
        assert!(target_lh > 0.0 && target_lh <= 1.0, "LH in (0,1]");
        assert!(
            m as f64 * MIN_USAGE <= target_lh + 1e-9,
            "cannot split LH={target_lh} into {m} parts of at least {MIN_USAGE}"
        );
        // Stick-breaking over the budget above the per-member floor.
        let spare = target_lh - m as f64 * MIN_USAGE;
        let mut cuts: Vec<f64> = (0..m - 1).map(|_| rng.f64()).collect();
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut usages = Vec::with_capacity(m);
        let mut prev = 0.0;
        for &c in &cuts {
            usages.push(MIN_USAGE + spare * (c - prev));
            prev = c;
        }
        usages.push(MIN_USAGE + spare * (1.0 - prev));
        usages
            .into_iter()
            .enumerate()
            .map(|(i, u)| {
                // Periods 600–840 ms, distinct per member.
                let period = 60 + rng.below(25);
                ProcSpec::synthetic_host(format!("host{i}"), u.min(1.0), period)
            })
            .collect()
    }
}

/// The SPEC CPU2000 guest applications of Table 1.
pub mod spec {
    use super::*;

    /// Footprint of one SPEC application, from Table 1 of the paper.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct SpecApp {
        /// Benchmark name.
        pub name: &'static str,
        /// Isolated CPU usage (files only at start/end, so near 1).
        pub cpu_usage: f64,
        /// Resident set size, MB.
        pub resident_mb: u32,
        /// Virtual size, MB.
        pub virtual_mb: u32,
    }

    /// apsi: 98% CPU, 193 MB resident, 205 MB virtual.
    pub const APSI: SpecApp = SpecApp {
        name: "apsi",
        cpu_usage: 0.98,
        resident_mb: 193,
        virtual_mb: 205,
    };
    /// galgel: 99% CPU, 29 MB resident, 155 MB virtual.
    pub const GALGEL: SpecApp = SpecApp {
        name: "galgel",
        cpu_usage: 0.99,
        resident_mb: 29,
        virtual_mb: 155,
    };
    /// bzip2: 97% CPU, 180 MB resident, 182 MB virtual.
    pub const BZIP2: SpecApp = SpecApp {
        name: "bzip2",
        cpu_usage: 0.97,
        resident_mb: 180,
        virtual_mb: 182,
    };
    /// mcf: 99% CPU, 96 MB resident, 96 MB virtual.
    pub const MCF: SpecApp = SpecApp {
        name: "mcf",
        cpu_usage: 0.99,
        resident_mb: 96,
        virtual_mb: 96,
    };

    /// All four guest applications, in the paper's order.
    pub fn all() -> [SpecApp; 4] {
        [APSI, GALGEL, BZIP2, MCF]
    }

    impl SpecApp {
        /// A guest process spec running this application at `nice`.
        pub fn guest_spec(&self, nice: i8) -> ProcSpec {
            ProcSpec::new(
                self.name,
                ProcClass::Guest,
                nice,
                Demand::duty_cycle(self.cpu_usage, 100),
                MemSpec {
                    resident_mb: self.resident_mb,
                    virtual_mb: self.virtual_mb,
                },
            )
        }
    }
}

/// The Musbus-derived interactive host workloads of Table 1.
pub mod musbus {
    use super::*;

    /// Aggregate footprint of one Musbus workload (Table 1).
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct MusbusWorkload {
        /// Workload name (H1–H6).
        pub name: &'static str,
        /// Aggregate isolated CPU usage of the host group.
        pub cpu_usage: f64,
        /// Aggregate resident size, MB.
        pub resident_mb: u32,
        /// Aggregate virtual size, MB.
        pub virtual_mb: u32,
    }

    /// H1: 8.6% CPU, 71 MB.
    pub const H1: MusbusWorkload = MusbusWorkload {
        name: "H1",
        cpu_usage: 0.086,
        resident_mb: 71,
        virtual_mb: 122,
    };
    /// H2: 9.2% CPU, 213 MB (the memory-thrashing workload).
    pub const H2: MusbusWorkload = MusbusWorkload {
        name: "H2",
        cpu_usage: 0.092,
        resident_mb: 213,
        virtual_mb: 247,
    };
    /// H3: 17.2% CPU, 53 MB.
    pub const H3: MusbusWorkload = MusbusWorkload {
        name: "H3",
        cpu_usage: 0.172,
        resident_mb: 53,
        virtual_mb: 151,
    };
    /// H4: 21.9% CPU, 68 MB.
    pub const H4: MusbusWorkload = MusbusWorkload {
        name: "H4",
        cpu_usage: 0.219,
        resident_mb: 68,
        virtual_mb: 122,
    };
    /// H5: 57.0% CPU, 210 MB (heavy CPU and memory).
    pub const H5: MusbusWorkload = MusbusWorkload {
        name: "H5",
        cpu_usage: 0.570,
        resident_mb: 210,
        virtual_mb: 236,
    };
    /// H6: 66.2% CPU, 84 MB (heavy CPU).
    pub const H6: MusbusWorkload = MusbusWorkload {
        name: "H6",
        cpu_usage: 0.662,
        resident_mb: 84,
        virtual_mb: 113,
    };

    /// All six workloads, in the paper's order.
    pub fn all() -> [MusbusWorkload; 6] {
        [H1, H2, H3, H4, H5, H6]
    }

    impl MusbusWorkload {
        /// Decomposes the workload into host processes: an interactive
        /// editor, a command-line utility, and a compiler loop, splitting
        /// the aggregate CPU 1:3:6 and the memory 1:2:7, which mirrors
        /// how Musbus mixes `ed` scripts, Unix utilities, and `cc`
        /// invocations on files of varying size.
        ///
        /// Component usages carry a small load-dependent compensation:
        /// when the group runs together its members contend with each
        /// other and each one's relative-sleep duty cycle stretches, so
        /// the naive sum under-delivers at high aggregate load. The
        /// factor is calibrated so the group, measured together on an
        /// idle machine, reproduces the Table 1 aggregate within a few
        /// percent across H1–H6.
        pub fn processes(&self) -> Vec<ProcSpec> {
            let mem = |share: u32, total: u32| (total * share).div_ceil(10).max(1);
            let boost = 1.0 + 0.15 * self.cpu_usage;
            let part = |share: f64| (self.cpu_usage * share * boost).clamp(0.004, 0.95);
            let editor = ProcSpec::new(
                format!("{}-editor", self.name),
                ProcClass::Host,
                0,
                Demand::duty_cycle(part(0.1), 90),
                MemSpec {
                    resident_mb: mem(1, self.resident_mb),
                    virtual_mb: mem(1, self.virtual_mb),
                },
            );
            let utility = ProcSpec::new(
                format!("{}-utility", self.name),
                ProcClass::Host,
                0,
                Demand::duty_cycle(part(0.3), 150),
                MemSpec {
                    resident_mb: mem(2, self.resident_mb),
                    virtual_mb: mem(2, self.virtual_mb),
                },
            );
            // The compiler runs in longer build/pause phases.
            let busy = ((part(0.6) * 200.0).round() as u64).clamp(1, 190);
            let compiler = ProcSpec::new(
                format!("{}-cc", self.name),
                ProcClass::Host,
                0,
                Demand::Phases {
                    phases: vec![Phase {
                        busy,
                        idle: 200 - busy,
                    }],
                    repeat: true,
                },
                MemSpec {
                    resident_mb: mem(7, self.resident_mb),
                    virtual_mb: mem(7, self.virtual_mb),
                },
            );
            vec![editor, utility, compiler]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::time::secs;

    #[test]
    fn host_group_sums_to_target() {
        let mut rng = Rng::new(42);
        for &lh in &[0.1, 0.3, 0.5, 0.8, 1.0] {
            for m in 1..=5 {
                let group = synthetic::host_group(&mut rng, lh, m);
                assert_eq!(group.len(), m);
                let total: f64 = group.iter().map(|s| s.demand.isolated_usage()).sum();
                // Duty-cycle rounding to ticks introduces small error.
                assert!((total - lh).abs() < 0.05, "LH {lh} m {m} total {total}");
            }
        }
    }

    #[test]
    fn host_group_members_have_positive_usage() {
        let mut rng = Rng::new(7);
        let group = synthetic::host_group(&mut rng, 0.2, 5);
        for s in &group {
            assert!(s.demand.isolated_usage() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn host_group_rejects_impossible_split() {
        let mut rng = Rng::new(1);
        synthetic::host_group(&mut rng, 0.05, 5);
    }

    #[test]
    fn host_group_measured_alone_matches_lh() {
        // The group's measured aggregate usage on an idle machine must be
        // close to the requested LH — the paper's acceptance criterion.
        let mut rng = Rng::new(11);
        let group = synthetic::host_group(&mut rng, 0.5, 3);
        let mut m = Machine::default_linux();
        for s in group {
            m.spawn(s);
        }
        let d = m.measure(secs(120));
        assert!(
            (d.host_load() - 0.5).abs() < 0.06,
            "measured {}",
            d.host_load()
        );
    }

    #[test]
    fn spec_table1_footprints() {
        let apps = spec::all();
        assert_eq!(apps[0].name, "apsi");
        assert_eq!(apps[0].resident_mb, 193);
        assert_eq!(apps[1].resident_mb, 29);
        assert_eq!(apps[2].resident_mb, 180);
        assert_eq!(apps[3].resident_mb, 96);
        for a in apps {
            assert!(a.cpu_usage >= 0.97);
            let spec = a.guest_spec(0);
            assert!((spec.demand.isolated_usage() - a.cpu_usage).abs() < 0.01);
            assert_eq!(spec.mem.resident_mb, a.resident_mb);
        }
    }

    #[test]
    fn musbus_table1_footprints() {
        let hs = musbus::all();
        assert_eq!(hs.len(), 6);
        assert!((hs[4].cpu_usage - 0.57).abs() < 1e-9);
        assert_eq!(hs[1].resident_mb, 213);
        for h in hs {
            let procs = h.processes();
            assert_eq!(procs.len(), 3);
            let mem: u32 = procs.iter().map(|p| p.mem.resident_mb).sum();
            // Decomposition preserves aggregate memory within rounding.
            assert!(
                (mem as i64 - h.resident_mb as i64).abs() <= 3,
                "{}: {} vs {}",
                h.name,
                mem,
                h.resident_mb
            );
        }
    }

    #[test]
    fn musbus_isolated_usage_matches_aggregate() {
        for h in musbus::all() {
            let mut m = Machine::default_linux();
            for p in h.processes() {
                m.spawn(p);
            }
            let d = m.measure(secs(120));
            assert!(
                (d.host_load() - h.cpu_usage).abs() < 0.05,
                "{}: measured {} target {}",
                h.name,
                d.host_load(),
                h.cpu_usage
            );
        }
    }

    #[test]
    fn guest_with_usage_has_duty_cycle() {
        let g = synthetic::guest_with_usage(0.8, 19);
        assert!((g.demand.isolated_usage() - 0.8).abs() < 0.01);
        assert_eq!(g.nice, 19);
        assert_eq!(g.class, ProcClass::Guest);
    }
}
