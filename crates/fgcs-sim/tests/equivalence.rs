//! Tick-exact equivalence between the per-tick reference path and the
//! event-horizon batched path.
//!
//! Two machines are driven through identical schedules of spawns, kills,
//! renices, suspends and resumes; one advances via `step()` (through
//! `run_ticks_stepwise`), the other via the batched `run_ticks` in
//! randomly sized chunks. After every segment the complete observable
//! state must be identical: clock, cumulative CPU accounting, recalc
//! count, memory aggregates, per-pid cpu/wait ticks, quantum counters,
//! run states, and the full scheduling log.

use fgcs_sim::machine::{Machine, MachineConfig};
use fgcs_sim::proc::{Demand, MemSpec, Phase, Pid, ProcClass, ProcSpec};
use fgcs_stats::rng::Rng;

/// Asserts every observable of the two machines is identical.
fn assert_same(a: &Machine, b: &Machine, ctx: &str) {
    assert_eq!(a.now(), b.now(), "clock diverged ({ctx})");
    assert_eq!(
        a.accounting(),
        b.accounting(),
        "accounting diverged ({ctx})"
    );
    assert_eq!(
        a.recalc_count(),
        b.recalc_count(),
        "recalcs diverged ({ctx})"
    );
    assert_eq!(
        a.total_resident_mb(),
        b.total_resident_mb(),
        "memory diverged ({ctx})"
    );
    assert_eq!(
        a.host_resident_mb(),
        b.host_resident_mb(),
        "host memory diverged ({ctx})"
    );
    let pa: Vec<_> = a.processes().collect();
    let pb: Vec<_> = b.processes().collect();
    assert_eq!(pa.len(), pb.len(), "process count diverged ({ctx})");
    for (x, y) in pa.iter().zip(&pb) {
        let pid = x.pid;
        assert_eq!(x.cpu_ticks, y.cpu_ticks, "{pid} cpu_ticks diverged ({ctx})");
        assert_eq!(
            x.wait_ticks, y.wait_ticks,
            "{pid} wait_ticks diverged ({ctx})"
        );
        assert_eq!(x.counter, y.counter, "{pid} counter diverged ({ctx})");
        assert_eq!(x.state, y.state, "{pid} state diverged ({ctx})");
        assert_eq!(x.nice, y.nice, "{pid} nice diverged ({ctx})");
        assert_eq!(x.progress, y.progress, "{pid} progress diverged ({ctx})");
        assert!(
            x.work_frac == y.work_frac,
            "{pid} work_frac diverged: {} vs {} ({ctx})",
            x.work_frac,
            y.work_frac
        );
    }
    assert_eq!(a.run_log(), b.run_log(), "run log diverged ({ctx})");
}

/// A random process spec drawn from a mix that exercises every demand
/// pattern, both classes, the full nice range, and footprints from tiny
/// to thrash-inducing.
fn random_spec(rng: &mut Rng, heavy_mem: bool, sleepy: bool) -> ProcSpec {
    let class = if rng.chance(0.5) {
        ProcClass::Host
    } else {
        ProcClass::Guest
    };
    let nice = rng.range_u64(0, 19) as i8;
    let demand = match rng.below(if sleepy { 5 } else { 4 }) {
        0 => Demand::CpuBound { total_work: None },
        1 => Demand::CpuBound {
            total_work: Some(rng.range_u64(1, 400)),
        },
        2 => Demand::DutyCycle {
            busy: rng.range_u64(1, 50),
            idle: rng.range_u64(1, 80),
        },
        3 => {
            let n = rng.range_u64(1, 4) as usize;
            let phases = (0..n)
                .map(|_| Phase {
                    busy: rng.range_u64(1, 30),
                    idle: rng.range_u64(0, 40),
                })
                .collect();
            Demand::Phases {
                phases,
                repeat: rng.chance(0.5),
            }
        }
        // Sleeper-heavy mix: long sleeps dominate so idle batching and
        // wake ordering get a workout.
        _ => Demand::DutyCycle {
            busy: rng.range_u64(1, 3),
            idle: rng.range_u64(100, 1000),
        },
    };
    let mem = if heavy_mem && rng.chance(0.4) {
        MemSpec::resident(rng.range_u64(100, 400) as u32)
    } else {
        MemSpec::tiny()
    };
    ProcSpec::new(format!("p{}", rng.next_u32()), class, nice, demand, mem)
}

/// Drives a stepwise/batched machine pair through one random schedule.
fn fuzz_one(seed: u64, heavy_mem: bool, sleepy: bool) {
    let mut rng = Rng::for_stream(0xE9_01_44_FE, seed);
    let cfg = if heavy_mem {
        MachineConfig::solaris_384mb()
    } else {
        MachineConfig::default()
    };
    let mut reference = Machine::new(cfg.clone());
    let mut batched = Machine::new(cfg);
    reference.enable_run_log();
    batched.enable_run_log();

    let mut spawned: u32 = 0;
    for seg in 0..40 {
        // A random control action, mirrored on both machines.
        match rng.below(6) {
            0 | 1 => {
                let spec = random_spec(&mut rng, heavy_mem, sleepy);
                let pa = reference.spawn(spec.clone());
                let pb = batched.spawn(spec);
                assert_eq!(pa, pb);
                spawned += 1;
            }
            2 if spawned > 0 => {
                let pid = Pid(rng.below(spawned as u64) as u32);
                let _ = reference.kill(pid);
                let _ = batched.kill(pid);
            }
            3 if spawned > 0 => {
                let pid = Pid(rng.below(spawned as u64) as u32);
                let nice = rng.range_u64(0, 19) as i8;
                let _ = reference.renice(pid, nice);
                let _ = batched.renice(pid, nice);
            }
            4 if spawned > 0 => {
                let pid = Pid(rng.below(spawned as u64) as u32);
                let _ = reference.suspend(pid);
                let _ = batched.suspend(pid);
            }
            5 if spawned > 0 => {
                let pid = Pid(rng.below(spawned as u64) as u32);
                let _ = reference.resume(pid);
                let _ = batched.resume(pid);
            }
            _ => {}
        }

        // Advance both by the same span; the batched machine covers it
        // in random-size chunks so batch boundaries land everywhere.
        let span = rng.range_u64(1, 500);
        reference.run_ticks_stepwise(span);
        let mut left = span;
        while left > 0 {
            let chunk = rng.range_u64(1, left.min(200) + 1).min(left);
            batched.run_ticks(chunk);
            left -= chunk;
        }
        assert_same(&reference, &batched, &format!("seed {seed} segment {seg}"));
    }
}

#[test]
fn batched_equals_stepwise_light_workloads() {
    for seed in 0..12 {
        fuzz_one(seed, false, false);
    }
}

#[test]
fn batched_equals_stepwise_thrashing_workloads() {
    for seed in 100..112 {
        fuzz_one(seed, true, false);
    }
}

#[test]
fn batched_equals_stepwise_sleeper_heavy_workloads() {
    for seed in 200..212 {
        fuzz_one(seed, false, true);
    }
}

#[test]
fn batched_equals_stepwise_thrashing_and_sleepy() {
    for seed in 300..308 {
        fuzz_one(seed, true, true);
    }
}

/// Sustained thrashing spans are batched (work ticks + page-fault
/// stalls together) and must stay tick-exact against the reference:
/// the fractional stall-debt accrual is replayed scalar-exactly, so
/// the residual debt, the iowait accounting, and the run-log positions
/// all land on identical values.
///
/// Two pressure regimes matter and both are pinned here: *mild*
/// overcommit (efficiency > 0.5, debt crosses a whole stall only every
/// few work ticks) and *deep* overcommit (several stall ticks per work
/// tick). The per-segment control actions kill/resume residents so the
/// pressure flips on and off mid-run.
#[test]
fn thrash_spans_batch_tick_exactly() {
    for (label, resident_mb) in [("mild", 430u32), ("deep", 900u32)] {
        let cfg = MachineConfig::solaris_384mb();
        let mut reference = Machine::new(cfg.clone());
        let mut batched = Machine::new(cfg);
        reference.enable_run_log();
        batched.enable_run_log();

        // One big host resident creates the pressure; a host and a
        // guest compete for the CPU through the span (so the margin
        // and wait-tick paths are exercised while thrashing); a
        // duty-cycle sleeper bounds batches with wake horizons.
        let heavy = ProcSpec::new(
            "resident",
            ProcClass::Host,
            10,
            Demand::DutyCycle { busy: 7, idle: 23 },
            MemSpec::resident(resident_mb),
        );
        let cruncher = ProcSpec::new(
            "cruncher",
            ProcClass::Host,
            0,
            Demand::CpuBound { total_work: None },
            MemSpec::tiny(),
        );
        let guest = ProcSpec::cpu_bound_guest("guest", 19);
        for (r, b) in [(&heavy, &heavy), (&cruncher, &cruncher), (&guest, &guest)] {
            let pa = reference.spawn(r.clone());
            let pb = batched.spawn(b.clone());
            assert_eq!(pa, pb);
        }

        let mut rng = Rng::for_stream(0x0071_8405, resident_mb as u64);
        for seg in 0..30 {
            let span = rng.range_u64(50, 400);
            reference.run_ticks_stepwise(span);
            let mut left = span;
            while left > 0 {
                let chunk = rng.range_u64(1, left.min(128) + 1).min(left);
                batched.run_ticks(chunk);
                left -= chunk;
            }
            assert_same(
                &reference,
                &batched,
                &format!("{label} overcommit, segment {seg}"),
            );
        }
        // The span must actually have thrashed: page-fault stalls are
        // the whole point of the scenario.
        assert!(
            reference.accounting().iowait > 0,
            "{label}: scenario never thrashed"
        );
    }
}

/// The documented six-to-one epoch pattern must survive batching with
/// the run log enabled (per-tick entries, identical to the reference).
#[test]
fn run_log_batches_are_per_tick() {
    let mut m = Machine::default_linux();
    m.spawn(ProcSpec::new(
        "h",
        ProcClass::Host,
        0,
        Demand::CpuBound { total_work: None },
        MemSpec::tiny(),
    ));
    m.spawn(ProcSpec::cpu_bound_guest("g", 19));
    m.enable_run_log();
    m.run_ticks(70);
    let log = m.run_log();
    assert_eq!(log.len(), 70);
    for (j, &(t, _)) in log.iter().enumerate() {
        assert_eq!(t, j as u64, "log must hold one entry per tick");
    }
}
