//! Facade crate re-exporting the whole `fgcs` workspace.
pub use fgcs_core as core;
pub use fgcs_faults as faults;
pub use fgcs_par as par;
pub use fgcs_predict as predict;
pub use fgcs_service as service;
pub use fgcs_sim as sim;
pub use fgcs_stats as stats;
pub use fgcs_testbed as testbed;
pub use fgcs_wire as wire;
